// Congestion patterns: where netgauge.Run measures the LogGP parameters
// of an uncontended path, Congestion drives classic contention patterns —
// incast fan-in, permutation traffic, bisection stress — over a graph
// topology and reports what the fabric's per-link cursors observed:
// completion time, aggregate delivered bandwidth, per-link utilization,
// and queueing-delay percentiles. These are the observables the paper's
// congestion discussion (and the MPICH2-over-InfiniBand design study)
// reason about; the report makes them first-class experiment outputs.
package netgauge

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/fabric"
	"repro/internal/sim"
)

// CongestionConfig describes one congestion measurement.
type CongestionConfig struct {
	// Topo is the topology under test. Flat topologies are rejected:
	// without link cursors there is nothing to contend on.
	Topo *fabric.Topology
	// Pattern selects the traffic: "incast:F" (hosts 1..F all send to
	// host 0), "permutation" (host i sends to its edge neighbour i^1 —
	// uncongested on a fat-tree), or "bisection" (host i sends to
	// (i+H/2) mod H, stressing the spine/global links).
	Pattern string
	// Bytes is the per-flow payload. Zero selects 1 MiB.
	Bytes int
	// Hosts caps the populated host count. Zero uses the full topology.
	Hosts int
	// Fabric overrides the cost model (Topo is installed over it); nil
	// selects fabric.DefaultConfig.
	Fabric *fabric.Config
	// Shards and Workers configure the conservative-PDES run; zero runs
	// serial. The report is byte-identical under any shard/worker count.
	Shards  int
	Workers int
}

// LinkReport is one link's observed load.
type LinkReport struct {
	Name        string        `json:"name"`
	Bytes       int64         `json:"bytes"`
	Utilization float64       `json:"utilization"` // busy time / completion time
	QueueP50    time.Duration `json:"queue_p50_ns"`
	QueueP99    time.Duration `json:"queue_p99_ns"`
	QueueMax    time.Duration `json:"queue_max_ns"`
}

// CongestionReport is the outcome of one congestion pattern.
type CongestionReport struct {
	Topology     string        `json:"topology"`
	Pattern      string        `json:"pattern"`
	Flows        int           `json:"flows"`
	BytesPerFlow int           `json:"bytes_per_flow"`
	// Completion is the virtual makespan: last delivery instant.
	Completion time.Duration `json:"completion_ns"`
	// AggregateBandwidth is delivered payload over the makespan, B/s.
	AggregateBandwidth float64 `json:"aggregate_bw_bytes_per_sec"`
	// MaxLinkUtilization is the busiest link's busy fraction, with its
	// name alongside; Links carries every link that saw traffic.
	MaxLinkUtilization float64      `json:"max_link_utilization"`
	MaxLink            string       `json:"max_link"`
	Links              []LinkReport `json:"links,omitempty"`
	// Queueing-delay percentiles across every link charge of the run.
	QueueP50 time.Duration `json:"queue_p50_ns"`
	QueueP99 time.Duration `json:"queue_p99_ns"`
	QueueMax time.Duration `json:"queue_max_ns"`
}

// flowSpec is one (src, dst) pair of the pattern.
type flowSpec struct{ src, dst int }

func patternFlows(pattern string, hosts int) ([]flowSpec, error) {
	kind, arg, _ := strings.Cut(pattern, ":")
	switch kind {
	case "incast":
		fan := hosts - 1
		if arg != "" {
			n, err := strconv.Atoi(arg)
			if err != nil {
				return nil, fmt.Errorf("netgauge: incast fan-in %q: %v", arg, err)
			}
			fan = n
		}
		if fan < 1 || fan >= hosts {
			return nil, fmt.Errorf("netgauge: incast fan-in %d needs 1..%d senders", fan, hosts-1)
		}
		flows := make([]flowSpec, fan)
		for i := range flows {
			flows[i] = flowSpec{src: i + 1, dst: 0}
		}
		return flows, nil
	case "permutation":
		if arg != "" {
			return nil, fmt.Errorf("netgauge: permutation takes no argument, got %q", arg)
		}
		flows := make([]flowSpec, 0, hosts)
		for i := 0; i < hosts; i++ {
			if d := i ^ 1; d < hosts {
				flows = append(flows, flowSpec{src: i, dst: d})
			}
		}
		return flows, nil
	case "bisection":
		if arg != "" {
			return nil, fmt.Errorf("netgauge: bisection takes no argument, got %q", arg)
		}
		if hosts < 2 {
			return nil, fmt.Errorf("netgauge: bisection needs >= 2 hosts")
		}
		flows := make([]flowSpec, hosts)
		for i := 0; i < hosts; i++ {
			flows[i] = flowSpec{src: i, dst: (i + hosts/2) % hosts}
		}
		return flows, nil
	default:
		return nil, fmt.Errorf("netgauge: unknown pattern %q (have incast[:F], permutation, bisection)", pattern)
	}
}

// Congestion runs one traffic pattern over a graph topology and reports
// the fabric's per-link observations. The flows drive the fabric
// directly (no MPI layer): this measures the interconnect, not the
// software stack above it.
func Congestion(cfg CongestionConfig) (CongestionReport, error) {
	if cfg.Topo == nil || cfg.Topo.Flat() {
		return CongestionReport{}, fmt.Errorf("netgauge: congestion patterns need a graph topology (fat-tree/dragonfly)")
	}
	fcfg := fabric.DefaultConfig()
	if cfg.Fabric != nil {
		fcfg = *cfg.Fabric
	}
	fcfg.Topo = cfg.Topo
	hosts := cfg.Topo.Hosts()
	if cfg.Hosts > 0 && cfg.Hosts < hosts {
		hosts = cfg.Hosts
	}
	bytes := cfg.Bytes
	if bytes == 0 {
		bytes = 1 << 20
	}
	flows, err := patternFlows(cfg.Pattern, hosts)
	if err != nil {
		return CongestionReport{}, err
	}

	ccfg := cluster.Config{
		Nodes:        hosts,
		CoresPerNode: 1,
		Fabric:       fcfg,
		Shards:       cfg.Shards,
	}
	if err := ccfg.Validate(); err != nil {
		return CongestionReport{}, err
	}
	cl := cluster.New(ccfg)
	ends := make([]sim.Time, len(flows))
	for i, fs := range flows {
		i := i
		src := cl.Nodes[fs.src].HCA.Port()
		dst := cl.Nodes[fs.dst].HCA.Port()
		fl := cl.Fabric.NewFlowID(src, dst, uint64(i))
		fl.Send(fabric.Message{Bytes: bytes, OnDeliver: func(at sim.Time) { ends[i] = at }})
	}
	if err := cl.Run(cfg.Workers); err != nil {
		return CongestionReport{}, err
	}

	var last sim.Time
	for _, at := range ends {
		if at > last {
			last = at
		}
	}
	completion := time.Duration(last)
	rep := CongestionReport{
		Topology:     cfg.Topo.Name(),
		Pattern:      cfg.Pattern,
		Flows:        len(flows),
		BytesPerFlow: bytes,
		Completion:   completion,
	}
	if completion > 0 {
		rep.AggregateBandwidth = float64(len(flows)) * float64(bytes) / (float64(completion) / float64(time.Second))
	}

	var merged fabric.LinkStats
	for _, ls := range cl.Fabric.LinkStats() {
		if ls.Charges == 0 {
			continue
		}
		util := 0.0
		if completion > 0 {
			util = float64(ls.Busy) / float64(completion)
		}
		rep.Links = append(rep.Links, LinkReport{
			Name:        ls.Link.Name,
			Bytes:       ls.Bytes,
			Utilization: util,
			QueueP50:    ls.QueuePercentile(0.50),
			QueueP99:    ls.QueuePercentile(0.99),
			QueueMax:    ls.MaxQueue,
		})
		if util > rep.MaxLinkUtilization {
			rep.MaxLinkUtilization = util
			rep.MaxLink = ls.Link.Name
		}
		merged.Charges += ls.Charges
		for b, c := range ls.QueueHist {
			merged.QueueHist[b] += c
		}
		if ls.MaxQueue > merged.MaxQueue {
			merged.MaxQueue = ls.MaxQueue
		}
	}
	rep.QueueP50 = merged.QueuePercentile(0.50)
	rep.QueueP99 = merged.QueuePercentile(0.99)
	rep.QueueMax = merged.MaxQueue
	return rep, nil
}
