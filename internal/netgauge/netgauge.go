// Package netgauge reproduces the role Netgauge plays in the paper
// (Section III): assessing LogGP parameters by running micro-benchmarks
// over the MPI-level transport — not the raw verbs device — because that is
// what the authors could run on Niagara. The parameters it produces are
// therefore *measurements through a software stack*, and differ from the
// fabric's true cost model in exactly the way the paper discusses when its
// model predictions and hardware results diverge (Section V-B1).
//
// Method, loosely following Hoefler et al.'s LogGP assessment:
//
//   - one-way time from ping-pong round trips: ow(k) = RTT(k)/2;
//   - G from the slope of ow over two large (rendezvous) sizes;
//   - o_s as the CPU time the send call occupies the caller;
//   - g from the arrival spacing of a back-to-back message train;
//   - o_r as the receiver's per-message dispatch spacing when messages are
//     queued (completion-processing limited);
//   - L as the remainder ow(small) − o_s − o_r, clamped at zero.
package netgauge

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/loggp"
	"repro/internal/mpi"
	"repro/internal/sim"
	"repro/internal/xport"
)

// Config controls the measurement.
type Config struct {
	// Warmup and Iters are per-experiment round counts. Zero selects 5
	// and 20.
	Warmup int
	Iters  int
	// TrainLen is the message-train length for gap measurement. Zero
	// selects 16.
	TrainLen int
	// SmallBytes is the latency probe size. Zero selects 8.
	SmallBytes int
	// SlopeA and SlopeB are the two sizes used for the G slope. Zero
	// selects 64 KiB and 256 KiB.
	SlopeA int
	SlopeB int
	// Cluster overrides the machine shape; nil selects a two-node
	// Niagara-like cluster. (Exposed so tests can measure a fabric with
	// known parameters.)
	Cluster *cluster.Config
}

func (c Config) withDefaults() Config {
	if c.Warmup == 0 {
		c.Warmup = 5
	}
	if c.Iters == 0 {
		c.Iters = 20
	}
	if c.TrainLen == 0 {
		c.TrainLen = 16
	}
	if c.SmallBytes == 0 {
		c.SmallBytes = 8
	}
	if c.SlopeA == 0 {
		c.SlopeA = 64 << 10
	}
	if c.SlopeB == 0 {
		c.SlopeB = 256 << 10
	}
	return c
}

// header values of the echo protocol.
const (
	hdrPing  = 1
	hdrPong  = 2
	hdrTrain = 3
)

// Run measures one LogGP parameter set.
func Run(cfg Config) (loggp.Params, error) {
	cfg = cfg.withDefaults()
	if cfg.SlopeB <= cfg.SlopeA {
		return loggp.Params{}, fmt.Errorf("netgauge: slope sizes out of order: %d <= %d", cfg.SlopeB, cfg.SlopeA)
	}

	clCfg := cluster.NiagaraConfig(2)
	if cfg.Cluster != nil {
		clCfg = *cfg.Cluster
	}
	w := mpi.NewWorld(mpi.Config{Cluster: clCfg})
	pv0, err := w.Rank(0).Provider("verbs")
	if err != nil {
		return loggp.Params{}, err
	}
	pv1, err := w.Rank(1).Provider("verbs")
	if err != nil {
		return loggp.Params{}, err
	}
	t0, err := pv0.NewMessenger(xport.MessengerConfig{})
	if err != nil {
		return loggp.Params{}, err
	}
	t1, err := pv1.NewMessenger(xport.MessengerConfig{})
	if err != nil {
		return loggp.Params{}, err
	}

	maxBytes := cfg.SlopeB
	buf0 := make([]byte, maxBytes)
	buf1 := make([]byte, maxBytes)
	mr0, err := pv0.RegMem(buf0)
	if err != nil {
		return loggp.Params{}, err
	}
	mr1, err := pv1.RegMem(buf1)
	if err != nil {
		return loggp.Params{}, err
	}

	// Rank 0 side state.
	pongs := 0
	var trainArrivals []sim.Time
	// pendingEcho hands rendezvous echo work from rank 1's control path to
	// its server proc (serialized by the engine).
	pendingEcho := 0
	t0.SetEagerHandler(func(p *sim.Proc, from int, header uint64, data []byte) {
		if header == hdrPong {
			pongs++
		}
	})
	t0.SetRndv(
		func(from int, header uint64, size int) (xport.Mem, int, bool) { return mr0, 0, true },
		func(from int, header uint64, size int) {
			if header == hdrPong {
				pongs++
			}
		},
	)

	// Rank 1 is an echo/absorb server.
	echo := func(p *sim.Proc, size int) {
		mustSend(t1.SendMR(p, 0, hdrPong, mr1, 0, size))
	}
	t1.SetEagerHandler(func(p *sim.Proc, from int, header uint64, data []byte) {
		switch header {
		case hdrPing:
			echo(p, len(data))
		case hdrTrain:
			trainArrivals = append(trainArrivals, p.Now())
		}
	})
	t1.SetRndv(
		func(from int, header uint64, size int) (xport.Mem, int, bool) { return mr1, 0, true },
		func(from int, header uint64, size int) {
			// Rendezvous completion is observed from the receiver's
			// control path; the echo needs a proc, so record and let the
			// server loop reply.
			pendingEcho = size
		},
	)

	var params loggp.Params

	err = w.Run(func(p *sim.Proc, r *mpi.Rank) {
		switch r.ID() {
		case 0:
			params = measure(p, r, t0, cfg, mr0, &pongs, &trainArrivals)
		case 1:
			// Serve rendezvous echoes for as long as the measurement
			// runs; the server is a daemon, so the simulation ends when
			// rank 0 finishes.
			p.SetDaemon()
			for {
				r.WaitOn(p, func() bool { return pendingEcho > 0 })
				size := pendingEcho
				pendingEcho = 0
				echo(p, size)
			}
		}
	})
	if err != nil {
		return loggp.Params{}, err
	}
	if err := params.Validate(); err != nil {
		return params, fmt.Errorf("netgauge: implausible measurement: %w (%v)", err, params)
	}
	return params, nil
}

// measure runs on rank 0 and produces the parameter set.
func measure(p *sim.Proc, r *mpi.Rank, tr xport.Messenger, cfg Config, mr xport.Mem, pongs *int, trainArrivals *[]sim.Time) loggp.Params {
	pingpong := func(size int) time.Duration {
		var total time.Duration
		for i := 0; i < cfg.Warmup+cfg.Iters; i++ {
			want := *pongs + 1
			start := p.Now()
			mustSend(tr.SendMR(p, 1, hdrPing, mr, 0, size))
			r.WaitOn(p, func() bool { return *pongs >= want })
			if i >= cfg.Warmup {
				total += p.Now().Sub(start)
			}
		}
		return total / time.Duration(cfg.Iters) / 2 // one-way
	}

	owSmall := pingpong(cfg.SmallBytes)
	owA := pingpong(cfg.SlopeA)
	owB := pingpong(cfg.SlopeB)
	g := float64(owB-owA) / float64(cfg.SlopeB-cfg.SlopeA)
	if g <= 0 {
		// Degenerate fit (can happen with tiny iteration counts); fall
		// back to the small/large slope.
		g = float64(owB-owSmall) / float64(cfg.SlopeB-cfg.SmallBytes)
	}

	// Sender overhead: CPU time of the send call itself.
	start := p.Now()
	mustSend(tr.SendMR(p, 1, hdrTrain, mr, 0, cfg.SmallBytes))
	os := p.Now().Sub(start)

	// Message train: inter-arrival spacing at the receiver bounds both the
	// injection gap and the receiver's per-message processing.
	*trainArrivals = (*trainArrivals)[:0]
	for i := 0; i < cfg.TrainLen; i++ {
		mustSend(tr.SendMR(p, 1, hdrTrain, mr, 0, cfg.SmallBytes))
	}
	// The arrivals are recorded by the peer's progress engine, which emits
	// no event on this rank; poll, as the real tool does.
	for len(*trainArrivals) < cfg.TrainLen {
		r.Progress(p)
		p.Sleep(2 * time.Microsecond)
	}
	var spacing time.Duration
	n := 0
	for i := 1; i < len(*trainArrivals); i++ {
		spacing += (*trainArrivals)[i].Sub((*trainArrivals)[i-1])
		n++
	}
	if n > 0 {
		spacing /= time.Duration(n)
	}

	or := spacing
	l := owSmall - os - or
	if l < 0 {
		l = 0
	}
	return loggp.Params{L: l, Os: os, Or: or, Gap: spacing, G: g}
}

// MeasureTable measures a per-size parameter table (G fitted locally at
// each size).
func MeasureTable(cfg Config, sizes []int) (*loggp.Table, error) {
	tb := loggp.NewTable()
	for _, s := range sizes {
		c := cfg
		c.SlopeA = s
		c.SlopeB = 2 * s
		c.SmallBytes = min(s, 8<<10)
		p, err := Run(c)
		if err != nil {
			return nil, fmt.Errorf("netgauge: size %d: %w", s, err)
		}
		tb.Set(s, p)
	}
	return tb, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// mustSend asserts a measurement send was accepted; sizes are validated by
// the configuration, so failure is a harness bug.
func mustSend(err error) {
	if err != nil {
		panic(fmt.Sprintf("netgauge: send: %v", err))
	}
}
