package netgauge

import (
	"testing"

	"repro/internal/fabric"
)

// TestIncastVsPermutationSpread is the acceptance check for the
// congestion model: on a 2-level fat-tree, a 16:1 incast must complete at
// least 2x slower than the uncongested permutation pattern (same per-flow
// payload), and the incast must saturate the victim's down link while the
// permutation leaves every link far below it.
func TestIncastVsPermutationSpread(t *testing.T) {
	topo, err := fabric.NewFatTree(fabric.FatTreeConfig{K: 8})
	if err != nil {
		t.Fatal(err)
	}
	const bytes = 256 << 10
	perm, err := Congestion(CongestionConfig{Topo: topo, Pattern: "permutation", Bytes: bytes})
	if err != nil {
		t.Fatal(err)
	}
	incast, err := Congestion(CongestionConfig{Topo: topo, Pattern: "incast:16", Bytes: bytes})
	if err != nil {
		t.Fatal(err)
	}
	if perm.Flows != topo.Hosts() || incast.Flows != 16 {
		t.Fatalf("flow counts: permutation %d, incast %d", perm.Flows, incast.Flows)
	}
	if incast.Completion < 2*perm.Completion {
		t.Errorf("16:1 incast completion %v not >= 2x permutation %v", incast.Completion, perm.Completion)
	}
	if incast.QueueP99 == 0 || incast.MaxLinkUtilization < 0.5 {
		t.Errorf("incast shows no contention: p99 queue %v, max util %.2f on %s",
			incast.QueueP99, incast.MaxLinkUtilization, incast.MaxLink)
	}
	if perm.MaxLinkUtilization >= incast.MaxLinkUtilization {
		t.Errorf("permutation max util %.2f (on %s) not below incast %.2f (on %s)",
			perm.MaxLinkUtilization, perm.MaxLink, incast.MaxLinkUtilization, incast.MaxLink)
	}
}

// TestCongestionDeterministicAcrossShards pins the canonical-order
// discipline end to end: every pattern must produce identical reports
// under any shard and worker count, on fat-tree and dragonfly alike.
func TestCongestionDeterministicAcrossShards(t *testing.T) {
	topos := []*fabric.Topology{}
	if ft, err := fabric.NewFatTree(fabric.FatTreeConfig{K: 4}); err != nil {
		t.Fatal(err)
	} else {
		topos = append(topos, ft)
	}
	if df, err := fabric.NewDragonfly(fabric.DragonflyConfig{Groups: 4, Routers: 2, HostsPer: 1}); err != nil {
		t.Fatal(err)
	} else {
		topos = append(topos, df)
	}
	for _, topo := range topos {
		for _, pattern := range []string{"incast:4", "permutation", "bisection"} {
			base, err := Congestion(CongestionConfig{Topo: topo, Pattern: pattern, Bytes: 128 << 10})
			if err != nil {
				t.Fatalf("%s/%s serial: %v", topo.Name(), pattern, err)
			}
			for _, shards := range []int{2, 4, 8} {
				for _, workers := range []int{1, 2} {
					got, err := Congestion(CongestionConfig{
						Topo: topo, Pattern: pattern, Bytes: 128 << 10,
						Shards: shards, Workers: workers,
					})
					if err != nil {
						t.Fatalf("%s/%s shards=%d: %v", topo.Name(), pattern, shards, err)
					}
					if got.Completion != base.Completion {
						t.Errorf("%s/%s shards=%d workers=%d completion %v != serial %v",
							topo.Name(), pattern, shards, workers, got.Completion, base.Completion)
					}
					if got.QueueP99 != base.QueueP99 || got.MaxLinkUtilization != base.MaxLinkUtilization {
						t.Errorf("%s/%s shards=%d workers=%d link stats diverge from serial",
							topo.Name(), pattern, shards, workers)
					}
					for i, l := range got.Links {
						if b := base.Links[i]; l != b {
							t.Errorf("%s/%s shards=%d link %s diverges: %+v vs %+v",
								topo.Name(), pattern, shards, l.Name, l, b)
						}
					}
				}
			}
		}
	}
}

// TestCongestionRejectsFlatTopology pins the graph-only contract.
func TestCongestionRejectsFlatTopology(t *testing.T) {
	if _, err := Congestion(CongestionConfig{Topo: fabric.SingleLink(), Pattern: "incast:2"}); err == nil {
		t.Fatal("flat topology accepted")
	}
	topo, _ := fabric.NewFatTree(fabric.FatTreeConfig{K: 4})
	if _, err := Congestion(CongestionConfig{Topo: topo, Pattern: "ring"}); err == nil {
		t.Fatal("unknown pattern accepted")
	}
}
