package trace

import (
	"fmt"
	"time"
)

// This file generates synthetic Pready arrival patterns: per-round,
// per-partition readiness delays that benchmark harnesses add to each
// compute thread before it calls MPI_Pready. The four kinds model the
// arrival regimes the adaptive aggregator must distinguish — uniform
// spread, bursty on/off phases, zipf-skewed per-thread imbalance, and a
// rotating straggler tail.
//
// Everything is a pure function of (Seed, round, partition) through
// splitmix64, so generated schedules are replayable: no math/rand, no wall
// clock (the simdeterminism analyzer enforces both for this package).

// PatternKind selects an arrival regime.
type PatternKind int

const (
	// PatternUniform spreads arrivals evenly across [0, Spread) with
	// small per-partition jitter.
	PatternUniform PatternKind = iota
	// PatternBursty alternates calm phases (uniform, tight) and burst
	// phases (half the partitions delayed by the full Spread) every
	// BurstLen rounds.
	PatternBursty
	// PatternZipf draws each partition's delay from a zipf-weighted ramp:
	// rank r of n costs Spread/(r+1)^Theta, with the rank-to-partition
	// assignment reshuffled deterministically each round — a few
	// partitions are always late, but which ones varies.
	PatternZipf
	// PatternStraggler delays one rotating partition by Spread while the
	// rest arrive within Spread/64.
	PatternStraggler
)

func (k PatternKind) String() string {
	switch k {
	case PatternUniform:
		return "uniform"
	case PatternBursty:
		return "bursty"
	case PatternZipf:
		return "zipf"
	case PatternStraggler:
		return "straggler"
	default:
		return "unknown pattern"
	}
}

// PatternKinds lists every kind in definition order (for benchmark grids).
func PatternKinds() []PatternKind {
	return []PatternKind{PatternUniform, PatternBursty, PatternZipf, PatternStraggler}
}

// ParsePatternKind maps a kind name (as String prints) back to its value.
func ParsePatternKind(name string) (PatternKind, error) {
	for _, k := range PatternKinds() {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("trace: unknown arrival pattern %q (want uniform, bursty, zipf, or straggler)", name)
}

// ArrivalPattern generates per-round Pready delay schedules.
type ArrivalPattern struct {
	Kind PatternKind
	// Seed selects the pattern instance; the same seed replays the same
	// schedule.
	Seed uint64
	// Spread is the delay scale: the slowest partition of a round arrives
	// about this long after the round's first. Zero selects 200µs.
	Spread time.Duration
	// Theta is the zipf exponent (PatternZipf only). Zero selects 1.0 —
	// ddtxn-style single-parameter skew.
	Theta float64
	// BurstLen is the phase length in rounds (PatternBursty only). Zero
	// selects 6.
	BurstLen int

	// perm is the reusable rank-to-partition assignment scratch.
	perm []int
}

// Instance returns an independent pattern with the seed mixed by id —
// same parameters, fresh scratch. Benchmarks hand one instance to each
// rank so per-rank schedules differ but replay exactly, and no scratch is
// shared across simulation shards.
func (a *ArrivalPattern) Instance(id int) *ArrivalPattern {
	return &ArrivalPattern{
		Kind:     a.Kind,
		Seed:     a.Seed ^ (0x9e3779b97f4a7c15 * uint64(id+1)),
		Spread:   a.Spread,
		Theta:    a.Theta,
		BurstLen: a.BurstLen,
	}
}

// splitmix64 advances *s and returns the next raw 64-bit draw — the same
// generator the bench jitter PRNG uses.
func splitmix64(s *uint64) uint64 {
	*s += 0x9e3779b97f4a7c15
	z := *s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// below returns a uniform draw in [0, n).
func below(s *uint64, n int64) int64 {
	if n <= 0 {
		return 0
	}
	return int64(splitmix64(s) % uint64(n))
}

func (a *ArrivalPattern) spread() time.Duration {
	if a.Spread > 0 {
		return a.Spread
	}
	return 200 * time.Microsecond
}

func (a *ArrivalPattern) burstLen() int {
	if a.BurstLen > 0 {
		return a.BurstLen
	}
	return 6
}

func (a *ArrivalPattern) theta() float64 {
	if a.Theta > 0 {
		return a.Theta
	}
	return 1.0
}

// Delays fills out with the round's per-partition Pready delays and
// returns it (len(out) partitions). The result is a pure function of
// (Seed, Kind parameters, round, len(out)).
func (a *ArrivalPattern) Delays(round int, out []time.Duration) []time.Duration {
	n := len(out)
	if n == 0 {
		return out
	}
	// Mix the round into the seed so rounds draw independent streams but
	// replays are exact.
	s := a.Seed + 0x9e3779b97f4a7c15*uint64(round+1)
	spread := a.spread()
	switch a.Kind {
	case PatternBursty:
		if (round/a.burstLen())%2 == 0 {
			// Calm phase: tight uniform arrivals.
			for i := range out {
				out[i] = time.Duration(below(&s, int64(spread)/16 + 1))
			}
			return out
		}
		// Burst phase: a random half of the partitions lags by ~Spread.
		for i := range out {
			late := below(&s, 2) == 1
			out[i] = time.Duration(below(&s, int64(spread)/16 + 1))
			if late {
				out[i] += spread
			}
		}
		return out
	case PatternZipf:
		// Delay for zipf rank r: Spread/(r+1)^Theta — rank 0 is the
		// slowest. Assign ranks to partitions by a per-round
		// Fisher-Yates shuffle.
		if cap(a.perm) < n {
			a.perm = make([]int, n)
		}
		perm := a.perm[:n]
		for i := range perm {
			perm[i] = i
		}
		for i := n - 1; i > 0; i-- {
			j := below(&s, int64(i+1))
			perm[i], perm[j] = perm[j], perm[i]
		}
		th := a.theta()
		for r, part := range perm {
			out[part] = time.Duration(float64(spread) / powf(float64(r+1), th))
		}
		return out
	case PatternStraggler:
		for i := range out {
			out[i] = time.Duration(below(&s, int64(spread)/64 + 1))
		}
		out[(int(a.Seed%uint64(n))+round)%n] = spread
		return out
	default: // PatternUniform
		for i := range out {
			out[i] = time.Duration(below(&s, int64(spread)))
		}
		return out
	}
}

// powf computes x**y for x ≥ 1 without importing math (exp/ln via the
// standard library would be fine determinism-wise, but a short binary
// decomposition over integer-ish exponents keeps the dependency surface
// minimal and bit-stable across platforms).
func powf(x, y float64) float64 {
	if x <= 1 || y == 0 {
		return 1
	}
	// Integer part by repeated multiplication, fractional part by
	// square-root bisection: y = k + f, x^f via 16 halvings.
	k := int(y)
	r := 1.0
	for i := 0; i < k; i++ {
		r *= x
	}
	f := y - float64(k)
	if f > 0 {
		base := x
		for i := 0; i < 16; i++ {
			base = sqrtf(base)
			f *= 2
			if f >= 1 {
				r *= base
				f -= 1
			}
		}
	}
	return r
}

// sqrtf is Newton's method on float64 — deterministic and dependency-free.
func sqrtf(x float64) float64 {
	if x <= 0 {
		return 0
	}
	g := x
	for i := 0; i < 32; i++ {
		g = (g + x/g) / 2
	}
	return g
}
