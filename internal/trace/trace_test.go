package trace

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/sim"
)

func TestSpanAndInstantJSON(t *testing.T) {
	r := New()
	r.Span("compute", sim.Time(1000), sim.Time(3000), 0, 1, map[string]string{"k": "v"})
	r.Instant("MPI_Pready", sim.Time(3000), 0, 1, nil)
	if r.Len() != 3 { // B + E + instant
		t.Fatalf("Len = %d", r.Len())
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var evs []Event
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil {
		t.Fatalf("output not valid JSON: %v\n%s", err, buf.String())
	}
	if len(evs) != 3 {
		t.Fatalf("decoded %d events", len(evs))
	}
	if evs[0].Phase != "B" || evs[0].TimestampUS != 1.0 {
		t.Fatalf("first event %+v", evs[0])
	}
	// Events are sorted by timestamp.
	for i := 1; i < len(evs); i++ {
		if evs[i].TimestampUS < evs[i-1].TimestampUS {
			t.Fatal("events not sorted")
		}
	}
}

func TestSpanBackwardsPanics(t *testing.T) {
	r := New()
	defer func() {
		if recover() == nil {
			t.Fatal("backwards span did not panic")
		}
	}()
	r.Span("x", sim.Time(10), sim.Time(5), 0, 0, nil)
}

func TestPartitionedObserver(t *testing.T) {
	rec := New()
	obs := &PartitionedObserver{R: rec, Rank: 3}
	obs.PsendStart(1, sim.Time(time.Millisecond))
	obs.PreadyCalled(1, 0, sim.Time(2*time.Millisecond))
	obs.PreadyCalled(1, 1, sim.Time(3*time.Millisecond))
	// 1 start instant + 2*(span B+E + instant) = 7 events.
	if rec.Len() != 7 {
		t.Fatalf("Len = %d", rec.Len())
	}
	var buf bytes.Buffer
	if err := rec.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("MPI_Pready")) {
		t.Fatal("missing Pready event")
	}
}

func TestDurationUS(t *testing.T) {
	if DurationUS(1500*time.Nanosecond) != 1.5 {
		t.Fatalf("DurationUS = %v", DurationUS(1500*time.Nanosecond))
	}
}
