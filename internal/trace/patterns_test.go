package trace

import (
	"testing"
	"time"
)

func TestPatternKindRoundTrip(t *testing.T) {
	for _, k := range PatternKinds() {
		got, err := ParsePatternKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParsePatternKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParsePatternKind("nope"); err == nil {
		t.Error("ParsePatternKind accepted an unknown name")
	}
}

func TestDelaysDeterministic(t *testing.T) {
	for _, k := range PatternKinds() {
		a := &ArrivalPattern{Kind: k, Seed: 42}
		b := &ArrivalPattern{Kind: k, Seed: 42}
		for round := 0; round < 20; round++ {
			da := a.Delays(round, make([]time.Duration, 32))
			db := b.Delays(round, make([]time.Duration, 32))
			for i := range da {
				if da[i] != db[i] {
					t.Fatalf("%v round %d part %d: %v vs %v", k, round, i, da[i], db[i])
				}
			}
		}
	}
}

func TestDelaysSeedsDiffer(t *testing.T) {
	for _, k := range PatternKinds() {
		a := (&ArrivalPattern{Kind: k, Seed: 1}).Delays(0, make([]time.Duration, 64))
		b := (&ArrivalPattern{Kind: k, Seed: 2}).Delays(0, make([]time.Duration, 64))
		same := true
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
		// The straggler pattern is mostly deterministic placement; only
		// require differing seeds to differ for the jittered kinds.
		if same && k != PatternStraggler {
			t.Errorf("%v: seeds 1 and 2 produced identical schedules", k)
		}
	}
}

func TestDelaysWithinSpread(t *testing.T) {
	const spread = 100 * time.Microsecond
	for _, k := range PatternKinds() {
		a := &ArrivalPattern{Kind: k, Seed: 7, Spread: spread}
		for round := 0; round < 16; round++ {
			for i, d := range a.Delays(round, make([]time.Duration, 16)) {
				if d < 0 || d > 2*spread {
					t.Fatalf("%v round %d part %d: delay %v outside [0, 2·spread]", k, round, i, d)
				}
			}
		}
	}
}

func TestStragglerRotatesAndIsolates(t *testing.T) {
	a := &ArrivalPattern{Kind: PatternStraggler, Seed: 3, Spread: time.Millisecond}
	seen := map[int]bool{}
	for round := 0; round < 8; round++ {
		d := a.Delays(round, make([]time.Duration, 8))
		worst, at := time.Duration(-1), -1
		for i, v := range d {
			if v > worst {
				worst, at = v, i
			}
		}
		if worst != time.Millisecond {
			t.Fatalf("round %d: straggler delay %v, want 1ms", round, worst)
		}
		for i, v := range d {
			if i != at && v > time.Millisecond/32 {
				t.Fatalf("round %d: non-straggler %d delayed %v", round, i, v)
			}
		}
		seen[at] = true
	}
	if len(seen) != 8 {
		t.Errorf("straggler visited %d of 8 partitions over 8 rounds", len(seen))
	}
}

func TestZipfSkewShape(t *testing.T) {
	a := &ArrivalPattern{Kind: PatternZipf, Seed: 11, Spread: time.Millisecond, Theta: 1}
	d := a.Delays(0, make([]time.Duration, 64))
	var max2 []time.Duration
	var sum time.Duration
	for _, v := range d {
		sum += v
		if len(max2) < 2 {
			max2 = append(max2, v)
		} else if v > max2[0] || v > max2[1] {
			if max2[0] < max2[1] {
				max2[0] = v
			} else {
				max2[1] = v
			}
		}
	}
	// Rank-0 delay is Spread, rank-1 Spread/2; together they must dominate
	// the mean of the rest — the heavy-tail signature.
	rest := sum - max2[0] - max2[1]
	if max2[0]+max2[1] < rest/8 {
		t.Errorf("zipf schedule lacks heavy tail: top2 %v, rest sum %v", max2, rest)
	}
	if max2[0] != time.Millisecond && max2[1] != time.Millisecond {
		t.Errorf("zipf rank-0 delay missing: top2 %v", max2)
	}
}

func TestBurstyPhases(t *testing.T) {
	a := &ArrivalPattern{Kind: PatternBursty, Seed: 5, Spread: time.Millisecond, BurstLen: 2}
	maxOf := func(round int) time.Duration {
		var m time.Duration
		for _, v := range a.Delays(round, make([]time.Duration, 32)) {
			if v > m {
				m = v
			}
		}
		return m
	}
	// Rounds 0-1 calm, 2-3 burst, 4-5 calm...
	if m := maxOf(0); m > time.Millisecond/8 {
		t.Errorf("calm round delayed %v", m)
	}
	if m := maxOf(2); m < time.Millisecond {
		t.Errorf("burst round max %v, want >= spread", m)
	}
	if m := maxOf(4); m > time.Millisecond/8 {
		t.Errorf("calm round after burst delayed %v", m)
	}
}

func TestPermScratchReused(t *testing.T) {
	a := &ArrivalPattern{Kind: PatternZipf, Seed: 1}
	out := make([]time.Duration, 16)
	a.Delays(0, out)
	allocs := testing.AllocsPerRun(100, func() { a.Delays(1, out) })
	if allocs != 0 {
		t.Errorf("Delays allocates %.1f/round after warm-up, want 0", allocs)
	}
}
