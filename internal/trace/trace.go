// Package trace records simulation activity as events viewable in
// chrome://tracing / Perfetto (the Trace Event JSON format). The partitioned
// module's Observer hook, benchmark harnesses, and application code can all
// emit spans; virtual timestamps map directly onto the trace timeline, so a
// recorded round renders exactly like the paper's Figure 10 arrival
// diagrams.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/sim"
)

// Event is one trace record. Spans use Begin/End pairs ("B"/"E" phases);
// Instant marks a point in time.
type Event struct {
	Name  string `json:"name"`
	Phase string `json:"ph"`
	// TimestampUS is microseconds on the trace timeline (virtual time).
	TimestampUS float64           `json:"ts"`
	PID         int               `json:"pid"`
	TID         int               `json:"tid"`
	Args        map[string]string `json:"args,omitempty"`
}

// Recorder accumulates events.
type Recorder struct {
	events []Event
}

// New returns an empty recorder.
func New() *Recorder { return &Recorder{} }

// Len reports the number of recorded events.
func (r *Recorder) Len() int { return len(r.events) }

// Instant records a point event on (pid, tid) — pid is conventionally the
// rank, tid the thread/partition.
func (r *Recorder) Instant(name string, at sim.Time, pid, tid int, args map[string]string) {
	r.events = append(r.events, Event{
		Name: name, Phase: "i", TimestampUS: at.Micros(), PID: pid, TID: tid, Args: args,
	})
}

// Span records a [from, to) interval on (pid, tid).
func (r *Recorder) Span(name string, from, to sim.Time, pid, tid int, args map[string]string) {
	if to < from {
		panic(fmt.Sprintf("trace: span %q ends (%v) before it begins (%v)", name, to, from))
	}
	r.events = append(r.events,
		Event{Name: name, Phase: "B", TimestampUS: from.Micros(), PID: pid, TID: tid, Args: args},
		Event{Name: name, Phase: "E", TimestampUS: to.Micros(), PID: pid, TID: tid},
	)
}

// WriteJSON emits the Trace Event JSON array, sorted by timestamp (the
// format chrome://tracing and Perfetto load directly).
func (r *Recorder) WriteJSON(w io.Writer) error {
	sorted := append([]Event(nil), r.events...)
	sort.SliceStable(sorted, func(i, j int) bool {
		return sorted[i].TimestampUS < sorted[j].TimestampUS
	})
	enc := json.NewEncoder(w)
	if _, err := io.WriteString(w, "[\n"); err != nil {
		return err
	}
	for i, ev := range sorted {
		if i > 0 {
			if _, err := io.WriteString(w, ",\n"); err != nil {
				return err
			}
		}
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n]\n")
	_ = enc
	return err
}

// PartitionedObserver adapts a Recorder to the partitioned module's
// Observer interface (core.Observer): each round becomes a set of
// per-partition instants, so the arrival pattern of the paper's Figure 10
// can be inspected interactively.
type PartitionedObserver struct {
	R    *Recorder
	Rank int

	lastStart sim.Time
}

// PsendStart records the round start.
func (o *PartitionedObserver) PsendStart(round int, at sim.Time) {
	o.lastStart = at
	o.R.Instant("MPI_Start", at, o.Rank, 0, map[string]string{"round": fmt.Sprint(round)})
}

// PreadyCalled records a partition's compute span (Start→Pready) and the
// Pready instant.
func (o *PartitionedObserver) PreadyCalled(round, part int, at sim.Time) {
	o.R.Span("compute", o.lastStart, at, o.Rank, part+1, nil)
	o.R.Instant("MPI_Pready", at, o.Rank, part+1, map[string]string{
		"round":     fmt.Sprint(round),
		"partition": fmt.Sprint(part),
	})
}

// DurationUS converts a duration to trace-timeline microseconds.
func DurationUS(d time.Duration) float64 { return float64(d) / 1e3 }
