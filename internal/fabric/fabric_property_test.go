package fabric

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/sim"
)

// TestConservationProperty: for any set of message sizes spread over any
// number of flows, every byte injected is eventually delivered, and total
// time is at least the wire serialization bound.
func TestConservationProperty(t *testing.T) {
	f := func(sizesRaw []uint16, flowsRaw uint8) bool {
		if len(sizesRaw) == 0 {
			return true
		}
		if len(sizesRaw) > 24 {
			sizesRaw = sizesRaw[:24]
		}
		nFlows := int(flowsRaw%4) + 1
		e := sim.NewEngine()
		fab := New(e, DefaultConfig())
		a, b := fab.NewPort("a"), fab.NewPort("b")
		flows := make([]*Flow, nFlows)
		for i := range flows {
			flows[i] = fab.NewFlow(a, b)
		}
		totalBytes := 0
		delivered := 0
		for i, sz := range sizesRaw {
			n := int(sz)
			totalBytes += n
			flows[i%nFlows].Send(Message{
				Bytes:     n,
				OnDeliver: func(sim.Time) { delivered++ },
			})
		}
		if err := e.Run(); err != nil {
			return false
		}
		if delivered != len(sizesRaw) {
			return false
		}
		if b.BytesReceived() != int64(totalBytes) {
			return false
		}
		// Lower bound: payload bytes over the raw link rate.
		minTime := time.Duration(float64(totalBytes) * fab.Config().LinkByteTime)
		return e.Now().Duration() >= minTime
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestFlowFIFOProperty: messages on one flow always deliver in post order,
// whatever their sizes.
func TestFlowFIFOProperty(t *testing.T) {
	f := func(sizesRaw []uint16) bool {
		if len(sizesRaw) == 0 {
			return true
		}
		if len(sizesRaw) > 16 {
			sizesRaw = sizesRaw[:16]
		}
		e := sim.NewEngine()
		fab := New(e, DefaultConfig())
		fl := fab.NewFlow(fab.NewPort("a"), fab.NewPort("b"))
		var order []int
		for i, sz := range sizesRaw {
			i := i
			fl.Send(Message{Bytes: int(sz), OnDeliver: func(sim.Time) { order = append(order, i) }})
		}
		if err := e.Run(); err != nil {
			return false
		}
		for i, v := range order {
			if v != i {
				return false
			}
		}
		return len(order) == len(sizesRaw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestBandwidthNeverExceedsLink: aggregate goodput through one egress port
// can never beat the configured link rate, regardless of flow fan-out.
func TestBandwidthNeverExceedsLink(t *testing.T) {
	f := func(flowsRaw, msgsRaw uint8) bool {
		nFlows := int(flowsRaw%8) + 1
		nMsgs := int(msgsRaw%8) + 1
		const size = 1 << 20
		e := sim.NewEngine()
		fab := New(e, DefaultConfig())
		a, b := fab.NewPort("a"), fab.NewPort("b")
		var last sim.Time
		for i := 0; i < nFlows; i++ {
			fl := fab.NewFlow(a, b)
			for j := 0; j < nMsgs; j++ {
				fl.Send(Message{Bytes: size, OnDeliver: func(at sim.Time) {
					if at > last {
						last = at
					}
				}})
			}
		}
		if err := e.Run(); err != nil {
			return false
		}
		gbps := float64(nFlows*nMsgs*size) / last.Duration().Seconds()
		return gbps <= fab.Config().LinkBandwidth()*1.01
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPairLookaheadFloorProperty: for every valid generated topology —
// random rack size, inter-rack extra, and perturbed base latencies — the
// per-pair lookahead of any port pair is at least the global floor,
// symmetric, and exactly the floor within a rack. The shard runtime
// depends on this invariant: SetLookaheadMatrix rejects entries below the
// floor, and windows widened per pair are only sound if every pair bound
// really dominates the scalar one.
func TestPairLookaheadFloorProperty(t *testing.T) {
	f := func(rackRaw uint8, extraRaw uint16, wireRaw, ackRaw, ctrlRaw uint16, aRaw, bRaw uint8) bool {
		cfg := DefaultConfig()
		cfg.RackSize = int(rackRaw % 9) // 0 (flat) .. 8
		cfg.WireLatency = time.Duration(wireRaw%5000+1) * time.Nanosecond
		cfg.AckLatency = time.Duration(ackRaw%5000+1) * time.Nanosecond
		cfg.CtrlLatency = time.Duration(ctrlRaw%5000+1) * time.Nanosecond
		if cfg.RackSize > 0 {
			cfg.InterRackExtra = time.Duration(extraRaw%3000) * time.Nanosecond
		}
		if err := cfg.Validate(); err != nil {
			// Only valid topologies make claims.
			return true
		}
		floor := cfg.Lookahead()
		a, b := int(aRaw%64), int(bRaw%64)
		pair := cfg.PairLookahead(a, b)
		if pair < floor {
			return false
		}
		if pair != cfg.PairLookahead(b, a) {
			return false
		}
		if cfg.RackSize > 0 && a/cfg.RackSize == b/cfg.RackSize && pair != floor {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}
