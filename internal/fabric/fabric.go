// Package fabric simulates the interconnect the software verbs device
// (internal/ibv) transmits on: an EDR-InfiniBand-like network whose costs
// follow the LogGP decomposition the paper models with.
//
// Each HCA owns a Port. A Flow is a unidirectional, reliable, ordered
// message pipeline between two ports — the fabric-level realization of one
// queue pair's send direction. Messages are charged:
//
//   - WRProcess per work request (doorbell + WQE fetch at the NIC),
//   - MsgGap between consecutive messages of the same flow (LogGP g),
//   - per-byte injection pacing PerQPByteTime on the flow (a single QP
//     cannot saturate the link, which is why the paper's Figure 7 finds
//     more QPs help large transfers),
//   - per-byte serialization LinkByteTime on the shared egress and ingress
//     link cursors (LogGP G), with per-MTU-packet header bytes, and
//   - WireLatency (LogGP L) on the wire, plus AckLatency for the sender's
//     completion.
//
// Link arbitration happens at burst granularity (BurstBytes, default
// 64 KiB): a flow reserves the link for at most one burst at a time, so
// concurrent flows interleave within a few microseconds like packets on a
// real switch, without simulating every 4 KiB packet as its own event.
//
// The fabric also provides a Control plane: small, reliable, ordered
// rank-to-rank messages used by the MPI runtime for queue-pair and rkey
// exchange, mirroring the paper's asynchronous connection setup inside
// MPI_Psend_init/MPI_Precv_init.
package fabric

import (
	"fmt"
	"time"

	"repro/internal/loggp"
	"repro/internal/sim"
)

// Config holds the fabric cost model. Use DefaultConfig for an
// EDR-InfiniBand-like parameterization.
type Config struct {
	// MTU is the maximum transmission unit in bytes.
	MTU int
	// BurstBytes is the link-arbitration granularity.
	BurstBytes int
	// PacketHeader is the per-MTU-packet header overhead in bytes.
	PacketHeader int
	// WireLatency is the one-way propagation latency (LogGP L).
	WireLatency time.Duration
	// AckLatency is the extra time until the sender's completion after
	// the last byte arrives (hardware ack on a reliable connection).
	AckLatency time.Duration
	// LinkByteTime is the shared-link per-byte cost in ns/B (LogGP G).
	LinkByteTime float64
	// PerQPByteTime is the per-flow injection pacing in ns/B; it must be
	// >= LinkByteTime. Values above LinkByteTime mean a single QP cannot
	// saturate the link.
	PerQPByteTime float64
	// WRProcess is the per-work-request NIC processing cost (WQE fetch
	// over PCIe after the doorbell).
	WRProcess time.Duration
	// InlineWRProcess replaces WRProcess for inline work requests: the
	// payload travels inside the doorbell write (inlining/BlueFlame), so
	// the NIC skips the WQE/payload DMA fetch. The paper leaves these
	// small-message features to future work; they are modelled here so
	// that study can be run (see the ablation experiments).
	InlineWRProcess time.Duration
	// MsgGap is the minimum spacing between messages of one flow (LogGP g).
	MsgGap time.Duration
	// CtrlLatency is the control-plane one-way latency.
	CtrlLatency time.Duration
	// RackSize groups ports into racks of this many consecutive IDs
	// (ports are created in node order, so contiguous IDs are physical
	// neighbours). 0 disables rack topology: every port shares one rack
	// and all pair latencies equal the base latencies.
	RackSize int
	// InterRackExtra is the additional one-way propagation latency
	// charged on every port-to-port interaction (wire, ack, control)
	// whose endpoints sit in different racks — the longer path through
	// the aggregation level of the switch hierarchy. Zero keeps the
	// fabric a flat single-switch network, byte-identical to the model
	// before racks existed.
	InterRackExtra time.Duration
}

// DefaultConfig returns an EDR-InfiniBand-like cost model: ~11.7 GB/s link,
// ~7.1 GB/s per QP, 4 KiB MTU, 1 µs wire latency. Per-WR processing and
// inter-message gaps are tens of nanoseconds, matching the ~200 M msg/s
// message rate of the ConnectX-5 generation — the hardware is cheap per
// work request; it is the *software* per-message cost (modelled in the MPI
// and UCX layers) that aggregation saves.
func DefaultConfig() Config {
	return Config{
		MTU:             4096,
		BurstBytes:      65536,
		PacketHeader:    64,
		WireLatency:     1000 * time.Nanosecond,
		AckLatency:      1000 * time.Nanosecond,
		LinkByteTime:    0.085,
		PerQPByteTime:   0.140,
		WRProcess:       25 * time.Nanosecond,
		InlineWRProcess: 5 * time.Nanosecond,
		MsgGap:          10 * time.Nanosecond,
		CtrlLatency:     1500 * time.Nanosecond,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.MTU <= 0:
		return fmt.Errorf("fabric: MTU %d must be positive", c.MTU)
	case c.BurstBytes < c.MTU:
		return fmt.Errorf("fabric: BurstBytes %d must be >= MTU %d", c.BurstBytes, c.MTU)
	case c.PacketHeader < 0:
		return fmt.Errorf("fabric: negative PacketHeader")
	case c.LinkByteTime <= 0:
		return fmt.Errorf("fabric: LinkByteTime must be positive")
	case c.PerQPByteTime < c.LinkByteTime:
		return fmt.Errorf("fabric: PerQPByteTime %v < LinkByteTime %v", c.PerQPByteTime, c.LinkByteTime)
	case c.WireLatency < 0 || c.AckLatency < 0 || c.WRProcess < 0 ||
		c.InlineWRProcess < 0 || c.MsgGap < 0 || c.CtrlLatency < 0:
		return fmt.Errorf("fabric: negative latency parameter")
	case c.RackSize < 0:
		return fmt.Errorf("fabric: negative RackSize")
	case c.InterRackExtra < 0:
		return fmt.Errorf("fabric: negative InterRackExtra")
	case c.InterRackExtra > 0 && c.RackSize == 0:
		return fmt.Errorf("fabric: InterRackExtra %v needs RackSize > 0", c.InterRackExtra)
	}
	return nil
}

// LinkBandwidth returns the shared-link bandwidth in bytes per second.
func (c Config) LinkBandwidth() float64 { return 1e9 / c.LinkByteTime }

// Lookahead returns the smallest cross-port interaction latency of the
// cost model: the minimum of the wire, ack, and control latencies. Every
// port-to-port effect in this package (burst arrival, completion,
// control delivery) is separated from its cause by at least this much
// virtual time, so it is a sound conservative-PDES lookahead bound for
// sharding the simulation along port boundaries (sim.ShardSet). With rack
// topology enabled it is the global floor; PairLookahead gives the wider
// per-pair bound.
func (c Config) Lookahead() time.Duration {
	l := c.WireLatency
	if c.AckLatency < l {
		l = c.AckLatency
	}
	if c.CtrlLatency < l {
		l = c.CtrlLatency
	}
	return l
}

// rackOf returns the rack index of a port ID (0 when rack topology is
// disabled).
func (c Config) rackOf(id int) int {
	if c.RackSize <= 0 {
		return 0
	}
	return id / c.RackSize
}

// pairExtra returns the extra one-way latency between two port IDs: zero
// within a rack, InterRackExtra across racks. It is symmetric.
//partib:hotpath
func (c Config) pairExtra(a, b int) time.Duration {
	if c.RackSize <= 0 || a/c.RackSize == b/c.RackSize {
		return 0
	}
	return c.InterRackExtra
}

// PairLookahead returns the smallest interaction latency between two
// specific ports: the global floor plus the pair's inter-rack extra.
// Every effect the fabric schedules from port a onto port b's engine is
// at least this far in the future, so it is a sound per-pair
// conservative-PDES lookahead (sim.ShardSet.SetLookaheadMatrix).
func (c Config) PairLookahead(a, b int) time.Duration {
	return c.Lookahead() + c.pairExtra(a, b)
}

// TrueParams expresses the fabric's own costs as a LogGP parameter set
// (the "fabric truth" against which Netgauge-style measurement through MPI
// is compared).
func (c Config) TrueParams() loggp.Params {
	return loggp.Params{
		L:   c.WireLatency,
		Os:  c.WRProcess,
		Or:  c.AckLatency,
		Gap: c.MsgGap,
		G:   c.LinkByteTime,
	}
}

// Fabric is a simulated interconnect instance. Its ports may live on
// different engines of one sim.ShardSet (see NewPortOn): all port-to-port
// interactions cross engines only through sim.Engine.Post with timestamps
// at least Config.Lookahead in the future, which is exactly the
// conservative-lookahead contract the shard runtime requires.
type Fabric struct {
	eng   *sim.Engine
	cfg   Config
	ports []*Port
}

// New creates a fabric on the engine. It panics on invalid configuration
// (a construction-time programming error).
func New(e *sim.Engine, cfg Config) *Fabric {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Fabric{eng: e, cfg: cfg}
}

// Engine returns the simulation engine.
func (f *Fabric) Engine() *sim.Engine { return f.eng }

// Config returns the cost model.
func (f *Fabric) Config() Config { return f.cfg }

// Port is one network endpoint (one HCA's link). Each port is owned by
// one engine (its shard): egress state is touched only by flows sending
// from the port (which run on its engine), ingress and control state only
// by reservation events delivered to its engine.
type Port struct {
	fab  *Fabric
	eng  *sim.Engine
	id   int
	name string

	egressFreeAt  sim.Time
	ingressFreeAt sim.Time

	// resvPending batches burst reservations that fired at the same
	// virtual instant so the ingress cursor can charge them in canonical
	// (arrival bound, source ID) order one nanosecond later — independent
	// of event seq order, which differs between serial and sharded runs
	// (see fireIngressResv). resvFlushAt is the instant of the scheduled
	// flush (at most one per instant). Both are owned by this port's
	// engine.
	resvPending []ingressResv
	resvFlushAt sim.Time

	ctrlHandler func(from *Port, payload any)
	// ctrlLastAt enforces FIFO control delivery per destination port. It
	// is advanced by arrival-side reservation events, so it is owned by
	// the destination engine.
	ctrlLastAt sim.Time
	// ctrlFree recycles this port's outbound control-delivery records.
	// Records are allocated by the sending port and recycled to the
	// receiving port (each side touching only its own list), so
	// steady-state control traffic stops allocating once both directions
	// are warm.
	ctrlFree []*ctrlDelivery

	// Statistics. Sent counters are written on the sending engine,
	// received counters on this port's engine.
	bytesSent     int64
	bytesReceived int64
	msgsSent      int64
}

// NewPort adds an endpoint to the fabric, owned by the fabric's engine.
func (f *Fabric) NewPort(name string) *Port {
	return f.NewPortOn(f.eng, name)
}

// NewPortOn adds an endpoint owned by engine e — the shard on which all
// of the port's arrival-side events run. e must be the fabric's engine or
// a shard of the same ShardSet.
func (f *Fabric) NewPortOn(e *sim.Engine, name string) *Port {
	p := &Port{fab: f, eng: e, id: len(f.ports), name: name}
	f.ports = append(f.ports, p)
	return p
}

// Name returns the port's name.
func (p *Port) Name() string { return p.name }

// ID returns the port's fabric-wide index (creation order). Ports are
// created in node order, so the ID doubles as the topology coordinate the
// rack model (Config.RackSize) partitions.
func (p *Port) ID() int { return p.id }

// Engine returns the engine (shard) that owns the port.
func (p *Port) Engine() *sim.Engine { return p.eng }

// Fabric returns the fabric this port is attached to.
func (p *Port) Fabric() *Fabric { return p.fab }

// BytesSent returns the cumulative payload bytes injected by this port.
func (p *Port) BytesSent() int64 { return p.bytesSent }

// BytesReceived returns the cumulative payload bytes delivered to this port.
func (p *Port) BytesReceived() int64 { return p.bytesReceived }

// MessagesSent returns the number of messages injected by this port.
func (p *Port) MessagesSent() int64 { return p.msgsSent }

// SetControlHandler installs the callback for control-plane messages
// addressed to this port.
func (p *Port) SetControlHandler(h func(from *Port, payload any)) {
	p.ctrlHandler = h
}

// ctrlDelivery is one in-flight control-plane message, pre-bound to its
// arrival event so SendControl schedules without a closure.
type ctrlDelivery struct {
	src, dst *Port
	payload  any
}

// fireCtrlArrive runs on the destination engine when a control message
// arrives (one control latency — plus the pair's inter-rack extra — after
// the send). It applies the destination's FIFO serialization: an
// uncontended arrival is delivered inline; an arrival at or before the
// previous delivery instant is pushed one nanosecond behind it. Arrivals
// from one sender are its sends shifted by a per-pair constant, so they
// fire in send order and per-sender FIFO holds; across senders the
// serialization follows arrival timestamps, a deterministic total order —
// and every delivery timestamp is identical to charging the cursor at
// arrival time the way a single serial engine would.
func fireCtrlArrive(at sim.Time, arg any) {
	cd := arg.(*ctrlDelivery)
	dst := cd.dst
	if at <= dst.ctrlLastAt {
		dst.ctrlLastAt++
		dst.eng.AtCall(dst.ctrlLastAt, fireCtrlDeliver, cd)
		return
	}
	dst.ctrlLastAt = at
	fireCtrlDeliver(at, arg)
}

// fireCtrlDeliver hands an arrived control message to the destination
// handler and recycles the delivery record to the destination port.
func fireCtrlDeliver(_ sim.Time, arg any) {
	cd := arg.(*ctrlDelivery)
	src, dst, payload := cd.src, cd.dst, cd.payload
	// Recycle before invoking the handler: handlers may send further
	// control messages and can then reuse this record.
	cd.src, cd.dst, cd.payload = nil, nil, nil
	dst.ctrlFree = append(dst.ctrlFree, cd)
	if dst.ctrlHandler == nil {
		panic(fmt.Sprintf("fabric: control message to %q with no handler", dst.name))
	}
	dst.ctrlHandler(src, payload)
}

// SendControl delivers payload to dst's control handler after the
// control-plane latency. Delivery order to a given destination is FIFO
// across all senders (a deterministic total order, like a serialized
// management network). Must be called on the sending port's engine.
func (p *Port) SendControl(dst *Port, payload any) {
	e := p.eng
	var cd *ctrlDelivery
	if n := len(p.ctrlFree); n > 0 {
		cd = p.ctrlFree[n-1]
		p.ctrlFree = p.ctrlFree[:n-1]
	} else {
		cd = new(ctrlDelivery)
	}
	cd.src, cd.dst, cd.payload = p, dst, payload
	lat := p.fab.cfg.CtrlLatency + p.fab.cfg.pairExtra(p.id, dst.id)
	e.Post(dst.eng, e.Now().Add(lat), fireCtrlArrive, cd)
}

// Message is one fabric-level transfer (the realization of one work
// request). OnDeliver runs at the virtual instant the last byte is placed
// at the destination; OnAck runs when the sender's hardware completion
// would be generated.
type Message struct {
	Bytes int
	// Inline marks a work request whose payload was written through the
	// doorbell (inlining/BlueFlame): the NIC charges InlineWRProcess
	// instead of WRProcess.
	Inline    bool
	OnDeliver func(at sim.Time)
	OnAck     func(at sim.Time)
}

// Flow is a unidirectional reliable ordered message pipeline between two
// ports (one QP's send direction). Messages injected on one flow are
// processed strictly in order; distinct flows contend for the shared link
// at burst granularity.
//
// A flow's injection pipeline (Send, step, finish, ack, release) runs on
// the source port's engine; arrival-side effects (ingress serialization,
// delivery) run on the destination port's engine, reached through
// per-burst reservation events posted one wire latency ahead (see step).
type Flow struct {
	fab *Fabric
	eng *sim.Engine // == src.eng: the injection-side shard
	src *Port
	dst *Port

	// queue[head:] are the messages not yet fully injected. Dequeuing
	// advances head; when the queue drains, both reset so the backing
	// array is reused instead of reallocated.
	queue []*flowMsg
	head  int
	// free recycles flowMsg structs: a message returns to the list once
	// its delivery (and ack, if requested) events have fired, so
	// steady-state Send allocates nothing after warm-up.
	free   []*flowMsg
	active bool

	// paceFreeAt is when the flow may inject its next burst (per-QP rate).
	paceFreeAt sim.Time
	// msgFreeAt is when the flow may begin processing its next WR.
	msgFreeAt sim.Time

	// Pair latencies, precomputed at NewFlow so the per-burst hot path
	// does no topology arithmetic: the forward wire latency src→dst, the
	// return ack latency dst→src, and the return release gap (the pair
	// lookahead), each including the inter-rack extra when the endpoints
	// sit in different racks.
	wireLat time.Duration
	ackLat  time.Duration
	relLat  time.Duration
}

// flowMsg is the in-flight state of one message. It doubles as the
// pre-bound argument of the flow's step/reservation/deliver/ack events,
// so the whole lifetime of a message schedules no closures.
//
// The resv* fields are a single-slot channel from the injection side to
// the arrival side, rewritten per burst. The reuse is race-free under
// sharding because consecutive writes are at least one full-burst pace
// apart, which Cluster validates to exceed the largest pair wire latency
// plus the largest pair lookahead: the reservation carrying the previous
// value has then already fired in an earlier synchronization hop (and
// the hop barrier orders the memory accesses). Likewise the struct is
// recycled only on the source engine, at least one pair lookahead after
// its final reservation fired.
type flowMsg struct {
	fl          *Flow
	msg         Message
	remaining   int
	lastArrival sim.Time
	ackAt       sim.Time
	// resvArrive is the arrival lower bound (egress end + wire latency)
	// of the burst whose reservation is in flight; resvFinal marks the
	// message's last burst.
	resvArrive sim.Time
	resvFinal  bool
}

// Typed-event trampolines for the flow pipeline (see sim.AtCall).
//partib:hotpath
func fireFlowStep(_ sim.Time, arg any)    { arg.(*Flow).step() }
//partib:hotpath
func fireFlowDeliver(_ sim.Time, arg any) { arg.(*flowMsg).deliver() }
//partib:hotpath
func fireFlowAck(_ sim.Time, arg any)     { arg.(*flowMsg).ack() }
//partib:hotpath
func fireFlowRelease(_ sim.Time, arg any) { fm := arg.(*flowMsg); fm.fl.release(fm) }

// NewFlow creates a flow from src to dst. Loopback (src == dst) is allowed.
func (f *Fabric) NewFlow(src, dst *Port) *Flow {
	if src == nil || dst == nil {
		panic("fabric: NewFlow with nil port")
	}
	if src.fab != f || dst.fab != f {
		panic("fabric: NewFlow ports belong to a different fabric")
	}
	extra := f.cfg.pairExtra(src.id, dst.id)
	return &Flow{
		fab: f, eng: src.eng, src: src, dst: dst,
		wireLat: f.cfg.WireLatency + extra,
		ackLat:  f.cfg.AckLatency + extra,
		relLat:  f.cfg.Lookahead() + extra,
	}
}

// Src returns the sending port.
func (fl *Flow) Src() *Port { return fl.src }

// Dst returns the receiving port.
func (fl *Flow) Dst() *Port { return fl.dst }

// Queued returns the number of messages not yet fully injected.
func (fl *Flow) Queued() int { return len(fl.queue) - fl.head }

// Send enqueues a message on the flow. Zero-byte messages still traverse
// the wire (headers move). Negative sizes panic.
//partib:hotpath
func (fl *Flow) Send(m Message) {
	if m.Bytes < 0 {
		panic("fabric: negative message size")
	}
	fl.src.msgsSent++
	fl.src.bytesSent += int64(m.Bytes)
	var fm *flowMsg
	if n := len(fl.free); n > 0 {
		fm = fl.free[n-1]
		fl.free[n-1] = nil
		fl.free = fl.free[:n-1]
	} else {
		fm = &flowMsg{fl: fl} //partlint:allow hotpathalloc free-list miss; steady state recycles
	}
	fm.msg, fm.remaining, fm.lastArrival = m, m.Bytes, 0
	fl.queue = append(fl.queue, fm) //partlint:allow hotpathalloc amortized; capacity is reused via queue[:0]
	if !fl.active {
		fl.active = true
		fl.startHead()
	}
}

// release returns a flowMsg whose events have all fired to the free list,
// dropping callback references so captured state can be collected.
//partib:hotpath
func (fl *Flow) release(fm *flowMsg) {
	fm.msg = Message{}
	fl.free = append(fl.free, fm) //partlint:allow hotpathalloc amortized free-list growth
}

// startHead begins WR processing for the message at the head of the queue.
//partib:hotpath
func (fl *Flow) startHead() {
	e := fl.eng
	start := e.Now()
	if fl.msgFreeAt > start {
		start = fl.msgFreeAt
	}
	proc := fl.fab.cfg.WRProcess
	if fl.queue[fl.head].msg.Inline {
		proc = fl.fab.cfg.InlineWRProcess
	}
	injectAt := start.Add(proc)
	if fl.paceFreeAt > injectAt {
		injectAt = fl.paceFreeAt
	}
	e.AtCall(injectAt, fireFlowStep, fl)
}

// step injects one burst of the head message, then schedules the next
// action. It runs as an event on the source engine. The destination's
// ingress cursor is not touched here: a reservation event posted one wire
// latency ahead joins the destination port's pending batch, and a flush
// charges the whole batch in canonical (arrival bound, source ID) order —
// see fireIngressResv. That order is a pure function of the traffic, so
// arrival timestamps are bit-for-bit identical across serial and sharded
// runs and across worker counts.
//partib:hotpath
func (fl *Flow) step() {
	e := fl.eng
	cfg := fl.fab.cfg
	fm := fl.queue[fl.head]

	// Zero-byte messages occupy the link for their header only.
	burst := fm.remaining
	if burst > cfg.BurstBytes {
		burst = cfg.BurstBytes
	}
	packets := loggp.Packets(burst, cfg.MTU)
	wireBytes := burst + packets*cfg.PacketHeader

	// Grab the shared egress link (FIFO cursor).
	grant := e.Now()
	if fl.src.egressFreeAt > grant {
		grant = fl.src.egressFreeAt
	}
	tx := time.Duration(float64(wireBytes) * cfg.LinkByteTime)
	egressEnd := grant.Add(tx)
	fl.src.egressFreeAt = egressEnd

	// Per-flow pacing for the next burst.
	pace := time.Duration(float64(burst) * cfg.PerQPByteTime)
	fl.paceFreeAt = grant.Add(pace)
	if fl.paceFreeAt < egressEnd {
		fl.paceFreeAt = egressEnd
	}

	fm.remaining -= burst
	fm.resvArrive = egressEnd.Add(fl.wireLat)
	fm.resvFinal = fm.remaining == 0
	e.Post(fl.dst.eng, e.Now().Add(fl.wireLat), fireIngressResv, fm)

	if fm.remaining > 0 {
		e.AtCall(fl.paceFreeAt, fireFlowStep, fl)
		return
	}

	// Message fully injected: close out the sender side and move on.
	fl.finish(egressEnd)
}

// ingressResv is one burst reservation awaiting its destination's ingress
// charge. The arrival bound, finality, and tie-break key are snapshotted at
// reservation-fire time (the flowMsg's single reservation slot may be
// rewritten by the source before the flush runs), so the flush touches the
// flowMsg only for final bursts, whose slot is stable until recycle.
type ingressResv struct {
	at     sim.Time // reservation fire instant (batch key)
	arrive sim.Time // arrival lower bound (egress end + wire latency)
	srcID  int      // tie-break after arrive: source port ID
	final  bool     // message's last burst: schedule delivery + completion
	fm     *flowMsg
}

// resvBefore is the canonical ingress-charge order within one instant's
// batch: earlier arrival bound first, source port ID breaking ties. Two
// reservations from one source port can never carry equal arrival bounds —
// the shared egress cursor strictly separates their egress ends — so the
// order is total.
//partib:hotpath
func resvBefore(a, b *ingressResv) bool {
	if a.arrive != b.arrive {
		return a.arrive < b.arrive
	}
	return a.srcID < b.srcID
}

// fireIngressResv runs on the destination engine when a burst reaches the
// destination. It does not charge the ingress cursor directly: reservations
// from different source ports can fire at the same virtual instant, and
// their event order at a tie follows engine seq assignment, which depends
// on how nodes are grouped onto shard engines. Charging in that order would
// make delivery timestamps differ between serial and sharded runs. Instead
// the reservation joins the port's pending batch, and a flush one
// nanosecond later charges the whole instant's batch in canonical
// (arrival bound, source ID) order — the same order, and therefore the same
// timestamps, on every shard layout.
//partib:hotpath
func fireIngressResv(at sim.Time, arg any) {
	fm := arg.(*flowMsg)
	dst := fm.fl.dst
	dst.resvPending = append(dst.resvPending, ingressResv{ //partlint:allow hotpathalloc amortized; batch buffer is reused
		at:     at,
		arrive: fm.resvArrive,
		srcID:  fm.fl.src.id,
		final:  fm.resvFinal,
		fm:     fm,
	})
	if flushAt := at + 1; dst.resvFlushAt < flushAt {
		dst.resvFlushAt = flushAt
		dst.eng.AtCall(flushAt, fireIngressFlush, dst)
	}
}

// fireIngressFlush charges the previous instant's reservation batch on the
// ingress cursor in canonical order, and for each final burst schedules the
// delivery locally and routes the completion (or, without one, the flowMsg
// recycle) back to the source — both at timestamps at least one lookahead
// ahead, keeping every cross-shard hop conservative. Only entries that
// fired strictly before this flush are processed: an entry firing at the
// flush instant itself may sit in the buffer already or not (seq order at
// the tie is arbitrary), so it is left for its own flush either way.
//partib:hotpath
func fireIngressFlush(now sim.Time, arg any) {
	p := arg.(*Port)
	pending := p.resvPending
	n := 0
	for n < len(pending) && pending[n].at < now {
		n++
	}
	batch := pending[:n]
	// Insertion sort into canonical order; batches are almost always a
	// single entry, a handful under heavy fan-in.
	for i := 1; i < len(batch); i++ {
		for j := i; j > 0 && resvBefore(&batch[j], &batch[j-1]); j-- {
			batch[j], batch[j-1] = batch[j-1], batch[j]
		}
	}
	for i := range batch {
		r := &batch[i]
		arrive := r.arrive
		if p.ingressFreeAt > arrive {
			arrive = p.ingressFreeAt
		}
		p.ingressFreeAt = arrive
		if !r.final {
			continue
		}
		fm := r.fm
		fl := fm.fl
		fm.lastArrival = arrive
		e := p.eng
		e.AtCall(arrive, fireFlowDeliver, fm)
		if fm.msg.OnAck != nil {
			fm.ackAt = arrive.Add(fl.ackLat)
			e.Post(fl.eng, fm.ackAt, fireFlowAck, fm)
		} else {
			// No completion requested: the struct still belongs to the
			// source engine's free list, so send it home one pair lookahead
			// after the delivery (the recycle instant has no observable
			// effect).
			e.Post(fl.eng, arrive.Add(fl.relLat), fireFlowRelease, fm)
		}
	}
	// Drop the processed prefix; clear vacated slots so delivered flowMsgs
	// are not pinned until overwritten.
	kept := copy(pending, pending[n:])
	for i := kept; i < len(pending); i++ {
		pending[i] = ingressResv{}
	}
	p.resvPending = pending[:kept]
}

// finish closes out the sender side of a fully injected message and
// advances to the next queued one. Delivery and completion are scheduled
// by the final burst's reservation on the arrival side; the flowMsg
// returns to the free list once the last source-side event referencing it
// (ack or release) has fired.
//partib:hotpath
func (fl *Flow) finish(egressEnd sim.Time) {
	fl.msgFreeAt = egressEnd.Add(fl.fab.cfg.MsgGap)
	fl.queue[fl.head] = nil
	fl.head++
	if fl.head == len(fl.queue) {
		fl.queue = fl.queue[:0]
		fl.head = 0
		fl.active = false
		return
	}
	fl.startHead()
}

// deliver runs on the destination engine at the instant the last byte is
// placed at the destination.
//partib:hotpath
func (fm *flowMsg) deliver() {
	fm.fl.dst.bytesReceived += int64(fm.msg.Bytes)
	if fn := fm.msg.OnDeliver; fn != nil {
		fn(fm.lastArrival)
	}
}

// ack runs on the source engine when the sender's hardware completion
// would be generated.
//partib:hotpath
func (fm *flowMsg) ack() {
	fn, at := fm.msg.OnAck, fm.ackAt
	fm.fl.release(fm)
	fn(at)
}
