// Package fabric simulates the interconnect the software verbs device
// (internal/ibv) transmits on: an EDR-InfiniBand-like network whose costs
// follow the LogGP decomposition the paper models with.
//
// Each HCA owns a Port. A Flow is a unidirectional, reliable, ordered
// message pipeline between two ports — the fabric-level realization of one
// queue pair's send direction. Messages are charged:
//
//   - WRProcess per work request (doorbell + WQE fetch at the NIC),
//   - MsgGap between consecutive messages of the same flow (LogGP g),
//   - per-byte injection pacing PerQPByteTime on the flow (a single QP
//     cannot saturate the link, which is why the paper's Figure 7 finds
//     more QPs help large transfers),
//   - per-byte serialization LinkByteTime on the shared egress and ingress
//     link cursors (LogGP G), with per-MTU-packet header bytes, and
//   - WireLatency (LogGP L) on the wire, plus AckLatency for the sender's
//     completion.
//
// Link arbitration happens at burst granularity (BurstBytes, default
// 64 KiB): a flow reserves the link for at most one burst at a time, so
// concurrent flows interleave within a few microseconds like packets on a
// real switch, without simulating every 4 KiB packet as its own event.
//
// The fabric also provides a Control plane: small, reliable, ordered
// rank-to-rank messages used by the MPI runtime for queue-pair and rkey
// exchange, mirroring the paper's asynchronous connection setup inside
// MPI_Psend_init/MPI_Precv_init.
package fabric

import (
	"fmt"
	"math/bits"
	"time"

	"repro/internal/loggp"
	"repro/internal/sim"
)

// Config holds the fabric cost model. Use DefaultConfig for an
// EDR-InfiniBand-like parameterization.
type Config struct {
	// MTU is the maximum transmission unit in bytes.
	MTU int
	// BurstBytes is the link-arbitration granularity.
	BurstBytes int
	// PacketHeader is the per-MTU-packet header overhead in bytes.
	PacketHeader int
	// WireLatency is the one-way propagation latency (LogGP L).
	WireLatency time.Duration
	// AckLatency is the extra time until the sender's completion after
	// the last byte arrives (hardware ack on a reliable connection).
	AckLatency time.Duration
	// LinkByteTime is the shared-link per-byte cost in ns/B (LogGP G).
	LinkByteTime float64
	// PerQPByteTime is the per-flow injection pacing in ns/B; it must be
	// >= LinkByteTime. Values above LinkByteTime mean a single QP cannot
	// saturate the link.
	PerQPByteTime float64
	// WRProcess is the per-work-request NIC processing cost (WQE fetch
	// over PCIe after the doorbell).
	WRProcess time.Duration
	// InlineWRProcess replaces WRProcess for inline work requests: the
	// payload travels inside the doorbell write (inlining/BlueFlame), so
	// the NIC skips the WQE/payload DMA fetch. The paper leaves these
	// small-message features to future work; they are modelled here so
	// that study can be run (see the ablation experiments).
	InlineWRProcess time.Duration
	// MsgGap is the minimum spacing between messages of one flow (LogGP g).
	MsgGap time.Duration
	// CtrlLatency is the control-plane one-way latency.
	CtrlLatency time.Duration
	// RackSize groups ports into racks of this many consecutive IDs
	// (ports are created in node order, so contiguous IDs are physical
	// neighbours). 0 disables rack topology: every port shares one rack
	// and all pair latencies equal the base latencies.
	RackSize int
	// InterRackExtra is the additional one-way propagation latency
	// charged on every port-to-port interaction (wire, ack, control)
	// whose endpoints sit in different racks — the longer path through
	// the aggregation level of the switch hierarchy. Zero keeps the
	// fabric a flat single-switch network, byte-identical to the model
	// before racks existed.
	//
	// Deprecated: RackSize/InterRackExtra are a shim over Topo — they
	// build the equivalent flat two-level Topology internally. New code
	// should set Topo (TwoLevel gives the identical model). Setting both
	// is a Validate error.
	InterRackExtra time.Duration
	// Topo selects the interconnect topology. nil means the single
	// shared link the fabric always modelled (or, when the legacy rack
	// fields are set, the equivalent two-level topology). Flat
	// topologies only reshape pair latencies; graph topologies
	// (fat-tree, dragonfly) add per-link serialization cursors so
	// routed flows genuinely contend. See topology.go.
	Topo *Topology
}

// DefaultConfig returns an EDR-InfiniBand-like cost model: ~11.7 GB/s link,
// ~7.1 GB/s per QP, 4 KiB MTU, 1 µs wire latency. Per-WR processing and
// inter-message gaps are tens of nanoseconds, matching the ~200 M msg/s
// message rate of the ConnectX-5 generation — the hardware is cheap per
// work request; it is the *software* per-message cost (modelled in the MPI
// and UCX layers) that aggregation saves.
func DefaultConfig() Config {
	return Config{
		MTU:             4096,
		BurstBytes:      65536,
		PacketHeader:    64,
		WireLatency:     1000 * time.Nanosecond,
		AckLatency:      1000 * time.Nanosecond,
		LinkByteTime:    0.085,
		PerQPByteTime:   0.140,
		WRProcess:       25 * time.Nanosecond,
		InlineWRProcess: 5 * time.Nanosecond,
		MsgGap:          10 * time.Nanosecond,
		CtrlLatency:     1500 * time.Nanosecond,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.MTU <= 0:
		return fmt.Errorf("fabric: MTU %d must be positive", c.MTU)
	case c.BurstBytes < c.MTU:
		return fmt.Errorf("fabric: BurstBytes %d must be >= MTU %d", c.BurstBytes, c.MTU)
	case c.PacketHeader < 0:
		return fmt.Errorf("fabric: negative PacketHeader")
	case c.LinkByteTime <= 0:
		return fmt.Errorf("fabric: LinkByteTime must be positive")
	case c.PerQPByteTime < c.LinkByteTime:
		return fmt.Errorf("fabric: PerQPByteTime %v < LinkByteTime %v", c.PerQPByteTime, c.LinkByteTime)
	case c.WireLatency < 0 || c.AckLatency < 0 || c.WRProcess < 0 ||
		c.InlineWRProcess < 0 || c.MsgGap < 0 || c.CtrlLatency < 0:
		return fmt.Errorf("fabric: negative latency parameter")
	case c.RackSize < 0:
		return fmt.Errorf("fabric: negative RackSize")
	case c.InterRackExtra < 0:
		return fmt.Errorf("fabric: negative InterRackExtra")
	case c.InterRackExtra > 0 && c.RackSize == 0:
		return fmt.Errorf("fabric: InterRackExtra %v needs RackSize > 0", c.InterRackExtra)
	case c.Topo != nil && (c.RackSize > 0 || c.InterRackExtra > 0):
		return fmt.Errorf("fabric: Topo %q and legacy RackSize/InterRackExtra are mutually exclusive (the rack fields are a two-level topology shim; set one or the other)", c.Topo.Name())
	}
	return c.Topo.validate()
}

// LinkBandwidth returns the shared-link bandwidth in bytes per second.
func (c Config) LinkBandwidth() float64 { return 1e9 / c.LinkByteTime }

// Lookahead returns the smallest cross-port interaction latency of the
// cost model: the minimum of the wire, ack, and control latencies. Every
// port-to-port effect in this package (burst arrival, completion,
// control delivery) is separated from its cause by at least this much
// virtual time, so it is a sound conservative-PDES lookahead bound for
// sharding the simulation along port boundaries (sim.ShardSet). With a
// multi-hop topology it additionally includes the smallest link latency,
// since routed bursts also hop between link cursors; with a flat topology
// (or the legacy rack fields) it is unchanged from the single-link model.
// PairLookahead gives the wider per-pair bound.
func (c Config) Lookahead() time.Duration {
	l := c.WireLatency
	if c.AckLatency < l {
		l = c.AckLatency
	}
	if c.CtrlLatency < l {
		l = c.CtrlLatency
	}
	if c.Topo != nil && !c.Topo.Flat() {
		if ml := c.Topo.MinLinkLatency(); ml < l {
			l = ml
		}
	}
	return l
}

// Topology resolves the configured topology: Topo when set, the flat
// two-level shim when the legacy rack fields are set, the single shared
// link otherwise. The returned copy is stamped with the config's wire
// latency so PairLatency is complete.
func (c Config) Topology() *Topology {
	t := c.Topo
	switch {
	case t != nil:
	case c.RackSize > 0:
		t = TwoLevel(c.RackSize, c.InterRackExtra)
	default:
		t = SingleLink()
	}
	r := *t
	r.baseWire = c.WireLatency
	return &r
}

// PairLookahead returns the smallest interaction latency between two
// specific ports: the global floor plus the pair's topology extra
// (inter-rack extra in the legacy model, shortest-path link latencies in
// a graph topology). Every effect the fabric schedules from port a onto
// port b's engine is at least this far in the future, so it is a sound
// per-pair conservative-PDES lookahead (sim.ShardSet.SetLookaheadMatrix).
func (c Config) PairLookahead(a, b int) time.Duration {
	return c.Lookahead() + c.Topology().PairExtra(a, b)
}

// TrueParams expresses the fabric's own costs as a LogGP parameter set
// (the "fabric truth" against which Netgauge-style measurement through MPI
// is compared).
func (c Config) TrueParams() loggp.Params {
	return loggp.Params{
		L:   c.WireLatency,
		Os:  c.WRProcess,
		Or:  c.AckLatency,
		Gap: c.MsgGap,
		G:   c.LinkByteTime,
	}
}

// Fabric is a simulated interconnect instance. Its ports may live on
// different engines of one sim.ShardSet (see NewPortOn): all port-to-port
// interactions cross engines only through sim.Engine.Post with timestamps
// at least Config.Lookahead in the future, which is exactly the
// conservative-lookahead contract the shard runtime requires.
type Fabric struct {
	eng   *sim.Engine
	cfg   Config
	topo  *Topology
	ports []*Port

	// links are the graph topology's serialization cursors (empty for
	// flat topologies). ownerLinks maps a host ID to the links whose
	// cursor its engine owns, so NewPortOn can bind engines; unbound
	// links (hosts beyond the port count) stay on the fabric's engine.
	links      []linkState
	ownerLinks map[int][]int
}

// New creates a fabric on the engine. It panics on invalid configuration
// (a construction-time programming error).
func New(e *sim.Engine, cfg Config) *Fabric {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	f := &Fabric{eng: e, cfg: cfg, topo: cfg.Topology()}
	if t := f.topo; !t.Flat() {
		f.links = make([]linkState, t.Links())
		f.ownerLinks = make(map[int][]int)
		for i := range f.links {
			link := t.LinkAt(i)
			bt := link.ByteTime
			if bt == 0 {
				bt = cfg.LinkByteTime
			}
			f.links[i] = linkState{link: link, eng: e, lat: link.Latency, byteTime: bt}
			f.ownerLinks[link.OwnerHost] = append(f.ownerLinks[link.OwnerHost], i)
		}
	}
	return f
}

// Engine returns the simulation engine.
func (f *Fabric) Engine() *sim.Engine { return f.eng }

// Config returns the cost model.
func (f *Fabric) Config() Config { return f.cfg }

// Topology returns the resolved topology the fabric was built with.
func (f *Fabric) Topology() *Topology { return f.topo }

// Port is one network endpoint (one HCA's link). Each port is owned by
// one engine (its shard): egress state is touched only by flows sending
// from the port (which run on its engine), ingress and control state only
// by reservation events delivered to its engine.
type Port struct {
	fab  *Fabric
	eng  *sim.Engine
	id   int
	name string

	egressFreeAt  sim.Time
	ingressFreeAt sim.Time

	// resvPending batches burst reservations that fired at the same
	// virtual instant so the ingress cursor can charge them in canonical
	// (arrival bound, source ID) order one nanosecond later — independent
	// of event seq order, which differs between serial and sharded runs
	// (see fireIngressResv). resvFlushAt is the instant of the scheduled
	// flush (at most one per instant). Both are owned by this port's
	// engine.
	resvPending []ingressResv
	resvFlushAt sim.Time

	ctrlHandler func(from *Port, payload any)
	// ctrlLastAt enforces FIFO control delivery per destination port. It
	// is advanced by arrival-side reservation events, so it is owned by
	// the destination engine.
	ctrlLastAt sim.Time
	// ctrlFree recycles this port's outbound control-delivery records.
	// Records are allocated by the sending port and recycled to the
	// receiving port (each side touching only its own list), so
	// steady-state control traffic stops allocating once both directions
	// are warm.
	ctrlFree []*ctrlDelivery

	// Statistics. Sent counters are written on the sending engine,
	// received counters on this port's engine.
	bytesSent     int64
	bytesReceived int64
	msgsSent      int64
}

// NewPort adds an endpoint to the fabric, owned by the fabric's engine.
func (f *Fabric) NewPort(name string) *Port {
	return f.NewPortOn(f.eng, name)
}

// NewPortOn adds an endpoint owned by engine e — the shard on which all
// of the port's arrival-side events run. e must be the fabric's engine or
// a shard of the same ShardSet. With a graph topology the port's ID must
// fit the topology's host count, and the link cursors the host owns
// (its down link, plus any switch links assigned to it) are bound to e.
// Ports are created before the simulation runs (or on a single engine),
// so the binding is race-free.
func (f *Fabric) NewPortOn(e *sim.Engine, name string) *Port {
	p := &Port{fab: f, eng: e, id: len(f.ports), name: name}
	if h := f.topo.Hosts(); h > 0 && p.id >= h {
		panic(fmt.Sprintf("fabric: port %d exceeds topology %q host capacity %d", p.id, f.topo.Name(), h))
	}
	for _, li := range f.ownerLinks[p.id] {
		f.links[li].eng = e
	}
	f.ports = append(f.ports, p)
	return p
}

// Name returns the port's name.
func (p *Port) Name() string { return p.name }

// ID returns the port's fabric-wide index (creation order). Ports are
// created in node order, so the ID doubles as the topology coordinate the
// rack model (Config.RackSize) partitions.
func (p *Port) ID() int { return p.id }

// Engine returns the engine (shard) that owns the port.
func (p *Port) Engine() *sim.Engine { return p.eng }

// Fabric returns the fabric this port is attached to.
func (p *Port) Fabric() *Fabric { return p.fab }

// BytesSent returns the cumulative payload bytes injected by this port.
func (p *Port) BytesSent() int64 { return p.bytesSent }

// BytesReceived returns the cumulative payload bytes delivered to this port.
func (p *Port) BytesReceived() int64 { return p.bytesReceived }

// MessagesSent returns the number of messages injected by this port.
func (p *Port) MessagesSent() int64 { return p.msgsSent }

// SetControlHandler installs the callback for control-plane messages
// addressed to this port.
func (p *Port) SetControlHandler(h func(from *Port, payload any)) {
	p.ctrlHandler = h
}

// ctrlDelivery is one in-flight control-plane message, pre-bound to its
// arrival event so SendControl schedules without a closure.
type ctrlDelivery struct {
	src, dst *Port
	payload  any
}

// fireCtrlArrive runs on the destination engine when a control message
// arrives (one control latency — plus the pair's inter-rack extra — after
// the send). It applies the destination's FIFO serialization: an
// uncontended arrival is delivered inline; an arrival at or before the
// previous delivery instant is pushed one nanosecond behind it. Arrivals
// from one sender are its sends shifted by a per-pair constant, so they
// fire in send order and per-sender FIFO holds; across senders the
// serialization follows arrival timestamps, a deterministic total order —
// and every delivery timestamp is identical to charging the cursor at
// arrival time the way a single serial engine would.
func fireCtrlArrive(at sim.Time, arg any) {
	cd := arg.(*ctrlDelivery)
	dst := cd.dst
	if at <= dst.ctrlLastAt {
		dst.ctrlLastAt++
		dst.eng.AtCall(dst.ctrlLastAt, fireCtrlDeliver, cd)
		return
	}
	dst.ctrlLastAt = at
	fireCtrlDeliver(at, arg)
}

// fireCtrlDeliver hands an arrived control message to the destination
// handler and recycles the delivery record to the destination port.
func fireCtrlDeliver(_ sim.Time, arg any) {
	cd := arg.(*ctrlDelivery)
	src, dst, payload := cd.src, cd.dst, cd.payload
	// Recycle before invoking the handler: handlers may send further
	// control messages and can then reuse this record.
	cd.src, cd.dst, cd.payload = nil, nil, nil
	dst.ctrlFree = append(dst.ctrlFree, cd)
	if dst.ctrlHandler == nil {
		panic(fmt.Sprintf("fabric: control message to %q with no handler", dst.name))
	}
	dst.ctrlHandler(src, payload)
}

// SendControl delivers payload to dst's control handler after the
// control-plane latency. Delivery order to a given destination is FIFO
// across all senders (a deterministic total order, like a serialized
// management network). Must be called on the sending port's engine.
func (p *Port) SendControl(dst *Port, payload any) {
	e := p.eng
	var cd *ctrlDelivery
	if n := len(p.ctrlFree); n > 0 {
		cd = p.ctrlFree[n-1]
		p.ctrlFree = p.ctrlFree[:n-1]
	} else {
		cd = new(ctrlDelivery)
	}
	cd.src, cd.dst, cd.payload = p, dst, payload
	lat := p.fab.cfg.CtrlLatency + p.fab.topo.PairExtra(p.id, dst.id)
	e.Post(dst.eng, e.Now().Add(lat), fireCtrlArrive, cd)
}

// Message is one fabric-level transfer (the realization of one work
// request). OnDeliver runs at the virtual instant the last byte is placed
// at the destination; OnAck runs when the sender's hardware completion
// would be generated.
type Message struct {
	Bytes int
	// Inline marks a work request whose payload was written through the
	// doorbell (inlining/BlueFlame): the NIC charges InlineWRProcess
	// instead of WRProcess.
	Inline    bool
	OnDeliver func(at sim.Time)
	OnAck     func(at sim.Time)
}

// Flow is a unidirectional reliable ordered message pipeline between two
// ports (one QP's send direction). Messages injected on one flow are
// processed strictly in order; distinct flows contend for the shared link
// at burst granularity.
//
// A flow's injection pipeline (Send, step, finish, ack, release) runs on
// the source port's engine; arrival-side effects (ingress serialization,
// delivery) run on the destination port's engine, reached through
// per-burst reservation events posted one wire latency ahead (see step).
type Flow struct {
	fab *Fabric
	eng *sim.Engine // == src.eng: the injection-side shard
	src *Port
	dst *Port

	// queue[head:] are the messages not yet fully injected. Dequeuing
	// advances head; when the queue drains, both reset so the backing
	// array is reused instead of reallocated.
	queue []*flowMsg
	head  int
	// free recycles flowMsg structs: a message returns to the list once
	// its delivery (and ack, if requested) events have fired, so
	// steady-state Send allocates nothing after warm-up.
	free   []*flowMsg
	active bool

	// paceFreeAt is when the flow may inject its next burst (per-QP rate).
	paceFreeAt sim.Time
	// msgFreeAt is when the flow may begin processing its next WR.
	msgFreeAt sim.Time

	// Pair latencies, precomputed at NewFlow so the per-burst hot path
	// does no topology arithmetic: the forward wire latency src→dst, the
	// return ack latency dst→src, and the return release gap (the pair
	// lookahead), each including the topology's pair extra (inter-rack,
	// or route latency) when the endpoints are not adjacent. On a routed
	// flow wireLat covers only host injection (the per-link latencies
	// are charged hop by hop), while ackLat/relLat still span the whole
	// return path.
	wireLat time.Duration
	ackLat  time.Duration
	relLat  time.Duration

	// Routed-topology state (nil/zero on flat topologies). route is the
	// flow's hash-selected link path, fixed at creation; flowID is the
	// caller-chosen identity that seeded the path hash and breaks
	// canonical-order ties between flows sharing a (src, dst) pair.
	// hopFree recycles hop reservations; it is touched only on the
	// source engine (take in step, return via fireHopRecycle).
	route   []*linkState
	flowID  uint64
	hopFree []*hopResv
}

// flowMsg is the in-flight state of one message. It doubles as the
// pre-bound argument of the flow's step/reservation/deliver/ack events,
// so the whole lifetime of a message schedules no closures.
//
// The resv* fields are a single-slot channel from the injection side to
// the arrival side, rewritten per burst. The reuse is race-free under
// sharding because consecutive writes are at least one full-burst pace
// apart, which Cluster validates to exceed the largest pair wire latency
// plus the largest pair lookahead: the reservation carrying the previous
// value has then already fired in an earlier synchronization hop (and
// the hop barrier orders the memory accesses). Likewise the struct is
// recycled only on the source engine, at least one pair lookahead after
// its final reservation fired.
type flowMsg struct {
	fl          *Flow
	msg         Message
	remaining   int
	lastArrival sim.Time
	ackAt       sim.Time
	// resvArrive is the arrival lower bound (egress end + wire latency)
	// of the burst whose reservation is in flight; resvFinal marks the
	// message's last burst.
	resvArrive sim.Time
	resvFinal  bool
}

// Typed-event trampolines for the flow pipeline (see sim.AtCall).
//partib:hotpath
func fireFlowStep(_ sim.Time, arg any)    { arg.(*Flow).step() }
//partib:hotpath
func fireFlowDeliver(_ sim.Time, arg any) { arg.(*flowMsg).deliver() }
//partib:hotpath
func fireFlowAck(_ sim.Time, arg any)     { arg.(*flowMsg).ack() }
//partib:hotpath
func fireFlowRelease(_ sim.Time, arg any) { fm := arg.(*flowMsg); fm.fl.release(fm) }

// NewFlow creates a flow from src to dst with flow identity 0. Loopback
// (src == dst) is allowed. On graph topologies, callers multiplexing
// several flows over one (src, dst) pair should use NewFlowID with
// distinct identities so the flows hash onto distinct equal-cost paths
// and order deterministically.
func (f *Fabric) NewFlow(src, dst *Port) *Flow {
	return f.NewFlowID(src, dst, 0)
}

// NewFlowID creates a flow from src to dst with an explicit flow
// identity. The identity seeds the deterministic ECMP path hash on graph
// topologies — distinct identities between one host pair spread across
// the equal-cost paths the way distinct QPs multipath on a real fabric —
// and breaks canonical arbitration ties between flows sharing a (src,
// dst) pair. It must be unique per (src, dst, direction) for the
// arbitration order to be total; the verbs layer derives it from the
// queue-pair number. Must be called before the simulation runs or on the
// source port's engine.
func (f *Fabric) NewFlowID(src, dst *Port, flowID uint64) *Flow {
	if src == nil || dst == nil {
		panic("fabric: NewFlow with nil port")
	}
	if src.fab != f || dst.fab != f {
		panic("fabric: NewFlow ports belong to a different fabric")
	}
	extra := f.topo.PairExtra(src.id, dst.id)
	fl := &Flow{
		fab: f, eng: src.eng, src: src, dst: dst, flowID: flowID,
		wireLat: f.cfg.WireLatency + extra,
		ackLat:  f.cfg.AckLatency + extra,
		relLat:  f.cfg.Lookahead() + extra,
	}
	if ids := f.topo.Route(src.id, dst.id, flowID); ids != nil {
		fl.route = make([]*linkState, len(ids))
		for i, id := range ids {
			fl.route[i] = &f.links[id]
		}
		// Hop latencies are charged per link; injection pays only the
		// host's wire latency.
		fl.wireLat = f.cfg.WireLatency
	}
	return fl
}

// Src returns the sending port.
func (fl *Flow) Src() *Port { return fl.src }

// Dst returns the receiving port.
func (fl *Flow) Dst() *Port { return fl.dst }

// Queued returns the number of messages not yet fully injected.
func (fl *Flow) Queued() int { return len(fl.queue) - fl.head }

// Send enqueues a message on the flow. Zero-byte messages still traverse
// the wire (headers move). Negative sizes panic.
//partib:hotpath
func (fl *Flow) Send(m Message) {
	if m.Bytes < 0 {
		panic("fabric: negative message size")
	}
	fl.src.msgsSent++
	fl.src.bytesSent += int64(m.Bytes)
	var fm *flowMsg
	if n := len(fl.free); n > 0 {
		fm = fl.free[n-1]
		fl.free[n-1] = nil
		fl.free = fl.free[:n-1]
	} else {
		fm = &flowMsg{fl: fl} //partlint:allow hotpathalloc free-list miss; steady state recycles
	}
	fm.msg, fm.remaining, fm.lastArrival = m, m.Bytes, 0
	fl.queue = append(fl.queue, fm) //partlint:allow hotpathalloc amortized; capacity is reused via queue[:0]
	if !fl.active {
		fl.active = true
		fl.startHead()
	}
}

// release returns a flowMsg whose events have all fired to the free list,
// dropping callback references so captured state can be collected.
//partib:hotpath
func (fl *Flow) release(fm *flowMsg) {
	fm.msg = Message{}
	fl.free = append(fl.free, fm) //partlint:allow hotpathalloc amortized free-list growth
}

// startHead begins WR processing for the message at the head of the queue.
//partib:hotpath
func (fl *Flow) startHead() {
	e := fl.eng
	start := e.Now()
	if fl.msgFreeAt > start {
		start = fl.msgFreeAt
	}
	proc := fl.fab.cfg.WRProcess
	if fl.queue[fl.head].msg.Inline {
		proc = fl.fab.cfg.InlineWRProcess
	}
	injectAt := start.Add(proc)
	if fl.paceFreeAt > injectAt {
		injectAt = fl.paceFreeAt
	}
	e.AtCall(injectAt, fireFlowStep, fl)
}

// step injects one burst of the head message, then schedules the next
// action. It runs as an event on the source engine. The destination's
// ingress cursor is not touched here: a reservation event posted one wire
// latency ahead joins the destination port's pending batch, and a flush
// charges the whole batch in canonical (arrival bound, source ID) order —
// see fireIngressResv. That order is a pure function of the traffic, so
// arrival timestamps are bit-for-bit identical across serial and sharded
// runs and across worker counts.
//partib:hotpath
func (fl *Flow) step() {
	e := fl.eng
	cfg := fl.fab.cfg
	fm := fl.queue[fl.head]

	// Zero-byte messages occupy the link for their header only.
	burst := fm.remaining
	if burst > cfg.BurstBytes {
		burst = cfg.BurstBytes
	}
	packets := loggp.Packets(burst, cfg.MTU)
	wireBytes := burst + packets*cfg.PacketHeader

	// Grab the shared egress link (FIFO cursor).
	grant := e.Now()
	if fl.src.egressFreeAt > grant {
		grant = fl.src.egressFreeAt
	}
	tx := time.Duration(float64(wireBytes) * cfg.LinkByteTime)
	egressEnd := grant.Add(tx)
	fl.src.egressFreeAt = egressEnd

	// Per-flow pacing for the next burst.
	pace := time.Duration(float64(burst) * cfg.PerQPByteTime)
	fl.paceFreeAt = grant.Add(pace)
	if fl.paceFreeAt < egressEnd {
		fl.paceFreeAt = egressEnd
	}

	fm.remaining -= burst
	if fl.route != nil {
		// Routed topology: the burst hops link cursor to link cursor
		// instead of reserving the destination's ingress. The hop record
		// snapshots everything the downstream flushes need, so the
		// flowMsg's single reservation slot is not involved and the
		// per-burst pace constraint the flat model needs does not apply.
		hr := fl.takeHop()
		hr.arrive = egressEnd.Add(fl.wireLat)
		hr.wireBytes = int32(wireBytes)
		hr.hop = 0
		hr.final = fm.remaining == 0
		if hr.final {
			hr.fm = fm
		}
		e.Post(fl.route[0].eng, e.Now().Add(fl.wireLat), fireLinkResv, hr)
	} else {
		fm.resvArrive = egressEnd.Add(fl.wireLat)
		fm.resvFinal = fm.remaining == 0
		e.Post(fl.dst.eng, e.Now().Add(fl.wireLat), fireIngressResv, fm)
	}

	if fm.remaining > 0 {
		e.AtCall(fl.paceFreeAt, fireFlowStep, fl)
		return
	}

	// Message fully injected: close out the sender side and move on.
	fl.finish(egressEnd)
}

// ingressResv is one burst reservation awaiting its destination's ingress
// charge. The arrival bound, finality, and tie-break key are snapshotted at
// reservation-fire time (the flowMsg's single reservation slot may be
// rewritten by the source before the flush runs), so the flush touches the
// flowMsg only for final bursts, whose slot is stable until recycle.
type ingressResv struct {
	at     sim.Time // reservation fire instant (batch key)
	arrive sim.Time // arrival lower bound (egress end + wire latency)
	srcID  int      // tie-break after arrive: source port ID
	final  bool     // message's last burst: schedule delivery + completion
	fm     *flowMsg
}

// resvBefore is the canonical ingress-charge order within one instant's
// batch: earlier arrival bound first, source port ID breaking ties. Two
// reservations from one source port can never carry equal arrival bounds —
// the shared egress cursor strictly separates their egress ends — so the
// order is total.
//partib:hotpath
func resvBefore(a, b *ingressResv) bool {
	if a.arrive != b.arrive {
		return a.arrive < b.arrive
	}
	return a.srcID < b.srcID
}

// fireIngressResv runs on the destination engine when a burst reaches the
// destination. It does not charge the ingress cursor directly: reservations
// from different source ports can fire at the same virtual instant, and
// their event order at a tie follows engine seq assignment, which depends
// on how nodes are grouped onto shard engines. Charging in that order would
// make delivery timestamps differ between serial and sharded runs. Instead
// the reservation joins the port's pending batch, and a flush one
// nanosecond later charges the whole instant's batch in canonical
// (arrival bound, source ID) order — the same order, and therefore the same
// timestamps, on every shard layout.
//partib:hotpath
func fireIngressResv(at sim.Time, arg any) {
	fm := arg.(*flowMsg)
	dst := fm.fl.dst
	dst.resvPending = append(dst.resvPending, ingressResv{ //partlint:allow hotpathalloc amortized; batch buffer is reused
		at:     at,
		arrive: fm.resvArrive,
		srcID:  fm.fl.src.id,
		final:  fm.resvFinal,
		fm:     fm,
	})
	if flushAt := at + 1; dst.resvFlushAt < flushAt {
		dst.resvFlushAt = flushAt
		dst.eng.AtCall(flushAt, fireIngressFlush, dst)
	}
}

// fireIngressFlush charges the previous instant's reservation batch on the
// ingress cursor in canonical order, and for each final burst schedules the
// delivery locally and routes the completion (or, without one, the flowMsg
// recycle) back to the source — both at timestamps at least one lookahead
// ahead, keeping every cross-shard hop conservative. Only entries that
// fired strictly before this flush are processed: an entry firing at the
// flush instant itself may sit in the buffer already or not (seq order at
// the tie is arbitrary), so it is left for its own flush either way.
//partib:hotpath
func fireIngressFlush(now sim.Time, arg any) {
	p := arg.(*Port)
	pending := p.resvPending
	n := 0
	for n < len(pending) && pending[n].at < now {
		n++
	}
	batch := pending[:n]
	// Insertion sort into canonical order; batches are almost always a
	// single entry, a handful under heavy fan-in.
	for i := 1; i < len(batch); i++ {
		for j := i; j > 0 && resvBefore(&batch[j], &batch[j-1]); j-- {
			batch[j], batch[j-1] = batch[j-1], batch[j]
		}
	}
	for i := range batch {
		r := &batch[i]
		arrive := r.arrive
		if p.ingressFreeAt > arrive {
			arrive = p.ingressFreeAt
		}
		p.ingressFreeAt = arrive
		if !r.final {
			continue
		}
		fm := r.fm
		fl := fm.fl
		fm.lastArrival = arrive
		e := p.eng
		e.AtCall(arrive, fireFlowDeliver, fm)
		if fm.msg.OnAck != nil {
			fm.ackAt = arrive.Add(fl.ackLat)
			e.Post(fl.eng, fm.ackAt, fireFlowAck, fm)
		} else {
			// No completion requested: the struct still belongs to the
			// source engine's free list, so send it home one pair lookahead
			// after the delivery (the recycle instant has no observable
			// effect).
			e.Post(fl.eng, arrive.Add(fl.relLat), fireFlowRelease, fm)
		}
	}
	// Drop the processed prefix; clear vacated slots so delivered flowMsgs
	// are not pinned until overwritten.
	kept := copy(pending, pending[n:])
	for i := kept; i < len(pending); i++ {
		pending[i] = ingressResv{}
	}
	p.resvPending = pending[:kept]
}

// finish closes out the sender side of a fully injected message and
// advances to the next queued one. Delivery and completion are scheduled
// by the final burst's reservation on the arrival side; the flowMsg
// returns to the free list once the last source-side event referencing it
// (ack or release) has fired.
//partib:hotpath
func (fl *Flow) finish(egressEnd sim.Time) {
	fl.msgFreeAt = egressEnd.Add(fl.fab.cfg.MsgGap)
	fl.queue[fl.head] = nil
	fl.head++
	if fl.head == len(fl.queue) {
		fl.queue = fl.queue[:0]
		fl.head = 0
		fl.active = false
		return
	}
	fl.startHead()
}

// deliver runs on the destination engine at the instant the last byte is
// placed at the destination.
//partib:hotpath
func (fm *flowMsg) deliver() {
	fm.fl.dst.bytesReceived += int64(fm.msg.Bytes)
	if fn := fm.msg.OnDeliver; fn != nil {
		fn(fm.lastArrival)
	}
}

// ack runs on the source engine when the sender's hardware completion
// would be generated.
//partib:hotpath
func (fm *flowMsg) ack() {
	fn, at := fm.msg.OnAck, fm.ackAt
	fm.fl.release(fm)
	fn(at)
}

// linkState is the serialization cursor of one graph-topology link. Each
// burst crossing the link is charged wireBytes*byteTime on the cursor in
// canonical order, then propagates for the link latency toward the next
// hop — the per-link LogGP {latency, byteTime} pair. All fields are owned
// by eng (the engine of the link's OwnerHost).
type linkState struct {
	link     Link
	eng      *sim.Engine
	lat      time.Duration
	byteTime float64 // resolved: Link.ByteTime or Config.LinkByteTime

	freeAt sim.Time
	// pending batches hop reservations that fired at the same virtual
	// instant so the cursor can charge them in canonical (arrival bound,
	// source, destination, flow) order one nanosecond later — the same
	// discipline as the port ingress batch (fireIngressResv), for the
	// same reason: event order at a timestamp tie depends on the shard
	// layout, the canonical order does not. flushAt is the instant of
	// the scheduled flush (at most one per instant).
	pending []*hopResv
	flushAt sim.Time

	// Statistics (owned by eng; read after the run).
	busy      time.Duration
	bytes     int64
	charges   int64
	maxQueue  time.Duration
	queueHist [queueHistBuckets]int64
}

// queueHistBuckets sizes the log2 queueing-delay histogram: bucket 0
// counts zero-delay charges, bucket b >= 1 counts delays in
// [2^(b-1), 2^b) nanoseconds; 40 buckets span past 18 virtual minutes.
const queueHistBuckets = 40

//partib:hotpath
func queueHistBucket(d time.Duration) int {
	b := bits.Len64(uint64(d))
	if b >= queueHistBuckets {
		b = queueHistBuckets - 1
	}
	return b
}

// LinkStats is the observable state of one link cursor after a run: how
// many bytes it carried, how long it was busy serializing, and the
// queueing-delay distribution its contention produced.
type LinkStats struct {
	Link     Link
	Bytes    int64
	Charges  int64
	Busy     time.Duration
	MaxQueue time.Duration
	// QueueHist[0] counts charges that waited zero time for the cursor;
	// QueueHist[b] (b >= 1) counts queueing delays in [2^(b-1), 2^b) ns.
	QueueHist [queueHistBuckets]int64
}

// QueuePercentile returns an upper bound on the p-quantile (0 < p <= 1)
// of the link's queueing delay, read from the log2 histogram: exact for
// zero delays, within 2x above.
func (s *LinkStats) QueuePercentile(p float64) time.Duration {
	if s.Charges == 0 {
		return 0
	}
	rank := int64(p * float64(s.Charges))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for b, c := range s.QueueHist {
		cum += c
		if cum >= rank {
			if b == 0 {
				return 0
			}
			up := time.Duration(1) << uint(b)
			if up > s.MaxQueue {
				up = s.MaxQueue
			}
			return up
		}
	}
	return s.MaxQueue
}

// LinkStats returns a snapshot of every link cursor's statistics (empty
// for flat topologies). Call it after the simulation has stopped.
func (f *Fabric) LinkStats() []LinkStats {
	out := make([]LinkStats, len(f.links))
	for i := range f.links {
		l := &f.links[i]
		out[i] = LinkStats{
			Link: l.link, Bytes: l.bytes, Charges: l.charges,
			Busy: l.busy, MaxQueue: l.maxQueue, QueueHist: l.queueHist,
		}
	}
	return out
}

// hopResv is one burst traversing a routed flow's link path. It
// snapshots everything the downstream link cursors need (the flowMsg's
// single reservation slot is never involved), hops cursor to cursor, and
// is recycled to the source engine's free list after the last hop. fm is
// set only on a message's final burst.
type hopResv struct {
	at        sim.Time // reservation fire instant at the current link (batch key)
	arrive    sim.Time // arrival lower bound at the current link's cursor
	wireBytes int32
	hop       int32
	final     bool
	fl        *Flow
	fm        *flowMsg
}

// takeHop pops a hop reservation from the flow's free list. Runs on the
// source engine (from step).
//partib:hotpath
func (fl *Flow) takeHop() *hopResv {
	if n := len(fl.hopFree); n > 0 {
		hr := fl.hopFree[n-1]
		fl.hopFree[n-1] = nil
		fl.hopFree = fl.hopFree[:n-1]
		return hr
	}
	return &hopResv{fl: fl} //partlint:allow hotpathalloc free-list miss; steady state recycles
}

// hopBefore is the canonical link-charge order within one instant's
// batch: earlier arrival bound first, then source port, destination
// port, and flow identity. Distinct flows never compare equal (the
// identity is unique per pair and direction), and equal keys — burst
// pairs of one flow — keep their FIFO order because the insertion sort
// is stable and per-flow hops arrive in injection order.
//partib:hotpath
func hopBefore(a, b *hopResv) bool {
	if a.arrive != b.arrive {
		return a.arrive < b.arrive
	}
	af, bf := a.fl, b.fl
	if af.src.id != bf.src.id {
		return af.src.id < bf.src.id
	}
	if af.dst.id != bf.dst.id {
		return af.dst.id < bf.dst.id
	}
	return af.flowID < bf.flowID
}

// fireLinkResv runs on a link's engine when a burst reaches the link. As
// with port ingress, the cursor is not charged here: reservations from
// different flows can fire at the same virtual instant in
// shard-layout-dependent event order, so the reservation joins the
// link's pending batch and a flush one nanosecond later charges the
// whole instant's batch in canonical order.
//partib:hotpath
func fireLinkResv(at sim.Time, arg any) {
	hr := arg.(*hopResv)
	l := hr.fl.route[hr.hop]
	hr.at = at
	l.pending = append(l.pending, hr) //partlint:allow hotpathalloc amortized; batch buffer is reused
	if flushAt := at + 1; l.flushAt < flushAt {
		l.flushAt = flushAt
		l.eng.AtCall(flushAt, fireLinkFlush, l)
	}
}

// fireLinkFlush charges the previous instant's batch on the link cursor
// in canonical order. Only entries that fired strictly before this flush
// are processed (each entry's own flush runs one nanosecond after it
// fired, and engine events fire in time order, so every processed entry
// fired exactly one nanosecond ago).
//partib:hotpath
func fireLinkFlush(now sim.Time, arg any) {
	l := arg.(*linkState)
	pending := l.pending
	n := 0
	for n < len(pending) && pending[n].at < now {
		n++
	}
	batch := pending[:n]
	for i := 1; i < len(batch); i++ {
		for j := i; j > 0 && hopBefore(batch[j], batch[j-1]); j-- {
			batch[j], batch[j-1] = batch[j-1], batch[j]
		}
	}
	for _, hr := range batch {
		l.charge(now, hr)
	}
	kept := copy(pending, pending[n:])
	for i := kept; i < len(pending); i++ {
		pending[i] = nil
	}
	l.pending = pending[:kept]
}

// charge serializes one burst onto the link and forwards it: to the next
// link's batch one link latency ahead, or — after the final (down) link —
// onto the destination host, scheduling delivery and routing the
// completion or recycle back to the source exactly as the flat pipeline
// does. Every cross-engine post is at least one link latency (next hop)
// or one pair lookahead (return path) in the future, so the hops stay
// conservative under the cluster's topology lookahead matrix.
//partib:hotpath
func (l *linkState) charge(now sim.Time, hr *hopResv) {
	start := hr.arrive
	if l.freeAt > start {
		start = l.freeAt
	}
	tx := time.Duration(float64(hr.wireBytes) * l.byteTime)
	end := start.Add(tx)
	l.freeAt = end

	l.busy += tx
	l.bytes += int64(hr.wireBytes)
	l.charges++
	qd := time.Duration(start - hr.arrive)
	if qd > l.maxQueue {
		l.maxQueue = qd
	}
	l.queueHist[queueHistBucket(qd)]++

	fl := hr.fl
	hr.arrive = end.Add(l.lat)
	hr.hop++
	if int(hr.hop) < len(fl.route) {
		l.eng.Post(fl.route[hr.hop].eng, now.Add(l.lat), fireLinkResv, hr)
		return
	}
	// Last hop: the burst has crossed the destination's down link. The
	// down link's cursor is owned by the destination host's engine, so
	// delivery is a local event.
	if hr.final {
		fm := hr.fm
		fm.lastArrival = hr.arrive
		l.eng.AtCall(hr.arrive, fireFlowDeliver, fm)
		if fm.msg.OnAck != nil {
			fm.ackAt = hr.arrive.Add(fl.ackLat)
			l.eng.Post(fl.eng, fm.ackAt, fireFlowAck, fm)
		} else {
			l.eng.Post(fl.eng, hr.arrive.Add(fl.relLat), fireFlowRelease, fm)
		}
	}
	l.eng.Post(fl.eng, now.Add(fl.relLat), fireHopRecycle, hr)
}

// fireHopRecycle returns a spent hop reservation to its flow's free list
// on the source engine.
//partib:hotpath
func fireHopRecycle(_ sim.Time, arg any) {
	hr := arg.(*hopResv)
	fl := hr.fl
	hr.fm = nil
	fl.hopFree = append(fl.hopFree, hr) //partlint:allow hotpathalloc amortized free-list growth
}
