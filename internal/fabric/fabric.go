// Package fabric simulates the interconnect the software verbs device
// (internal/ibv) transmits on: an EDR-InfiniBand-like network whose costs
// follow the LogGP decomposition the paper models with.
//
// Each HCA owns a Port. A Flow is a unidirectional, reliable, ordered
// message pipeline between two ports — the fabric-level realization of one
// queue pair's send direction. Messages are charged:
//
//   - WRProcess per work request (doorbell + WQE fetch at the NIC),
//   - MsgGap between consecutive messages of the same flow (LogGP g),
//   - per-byte injection pacing PerQPByteTime on the flow (a single QP
//     cannot saturate the link, which is why the paper's Figure 7 finds
//     more QPs help large transfers),
//   - per-byte serialization LinkByteTime on the shared egress and ingress
//     link cursors (LogGP G), with per-MTU-packet header bytes, and
//   - WireLatency (LogGP L) on the wire, plus AckLatency for the sender's
//     completion.
//
// Link arbitration happens at burst granularity (BurstBytes, default
// 64 KiB): a flow reserves the link for at most one burst at a time, so
// concurrent flows interleave within a few microseconds like packets on a
// real switch, without simulating every 4 KiB packet as its own event.
//
// The fabric also provides a Control plane: small, reliable, ordered
// rank-to-rank messages used by the MPI runtime for queue-pair and rkey
// exchange, mirroring the paper's asynchronous connection setup inside
// MPI_Psend_init/MPI_Precv_init.
package fabric

import (
	"fmt"
	"time"

	"repro/internal/loggp"
	"repro/internal/sim"
)

// Config holds the fabric cost model. Use DefaultConfig for an
// EDR-InfiniBand-like parameterization.
type Config struct {
	// MTU is the maximum transmission unit in bytes.
	MTU int
	// BurstBytes is the link-arbitration granularity.
	BurstBytes int
	// PacketHeader is the per-MTU-packet header overhead in bytes.
	PacketHeader int
	// WireLatency is the one-way propagation latency (LogGP L).
	WireLatency time.Duration
	// AckLatency is the extra time until the sender's completion after
	// the last byte arrives (hardware ack on a reliable connection).
	AckLatency time.Duration
	// LinkByteTime is the shared-link per-byte cost in ns/B (LogGP G).
	LinkByteTime float64
	// PerQPByteTime is the per-flow injection pacing in ns/B; it must be
	// >= LinkByteTime. Values above LinkByteTime mean a single QP cannot
	// saturate the link.
	PerQPByteTime float64
	// WRProcess is the per-work-request NIC processing cost (WQE fetch
	// over PCIe after the doorbell).
	WRProcess time.Duration
	// InlineWRProcess replaces WRProcess for inline work requests: the
	// payload travels inside the doorbell write (inlining/BlueFlame), so
	// the NIC skips the WQE/payload DMA fetch. The paper leaves these
	// small-message features to future work; they are modelled here so
	// that study can be run (see the ablation experiments).
	InlineWRProcess time.Duration
	// MsgGap is the minimum spacing between messages of one flow (LogGP g).
	MsgGap time.Duration
	// CtrlLatency is the control-plane one-way latency.
	CtrlLatency time.Duration
}

// DefaultConfig returns an EDR-InfiniBand-like cost model: ~11.7 GB/s link,
// ~7.1 GB/s per QP, 4 KiB MTU, 1 µs wire latency. Per-WR processing and
// inter-message gaps are tens of nanoseconds, matching the ~200 M msg/s
// message rate of the ConnectX-5 generation — the hardware is cheap per
// work request; it is the *software* per-message cost (modelled in the MPI
// and UCX layers) that aggregation saves.
func DefaultConfig() Config {
	return Config{
		MTU:             4096,
		BurstBytes:      65536,
		PacketHeader:    64,
		WireLatency:     1000 * time.Nanosecond,
		AckLatency:      1000 * time.Nanosecond,
		LinkByteTime:    0.085,
		PerQPByteTime:   0.140,
		WRProcess:       25 * time.Nanosecond,
		InlineWRProcess: 5 * time.Nanosecond,
		MsgGap:          10 * time.Nanosecond,
		CtrlLatency:     1500 * time.Nanosecond,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.MTU <= 0:
		return fmt.Errorf("fabric: MTU %d must be positive", c.MTU)
	case c.BurstBytes < c.MTU:
		return fmt.Errorf("fabric: BurstBytes %d must be >= MTU %d", c.BurstBytes, c.MTU)
	case c.PacketHeader < 0:
		return fmt.Errorf("fabric: negative PacketHeader")
	case c.LinkByteTime <= 0:
		return fmt.Errorf("fabric: LinkByteTime must be positive")
	case c.PerQPByteTime < c.LinkByteTime:
		return fmt.Errorf("fabric: PerQPByteTime %v < LinkByteTime %v", c.PerQPByteTime, c.LinkByteTime)
	case c.WireLatency < 0 || c.AckLatency < 0 || c.WRProcess < 0 ||
		c.InlineWRProcess < 0 || c.MsgGap < 0 || c.CtrlLatency < 0:
		return fmt.Errorf("fabric: negative latency parameter")
	}
	return nil
}

// LinkBandwidth returns the shared-link bandwidth in bytes per second.
func (c Config) LinkBandwidth() float64 { return 1e9 / c.LinkByteTime }

// TrueParams expresses the fabric's own costs as a LogGP parameter set
// (the "fabric truth" against which Netgauge-style measurement through MPI
// is compared).
func (c Config) TrueParams() loggp.Params {
	return loggp.Params{
		L:   c.WireLatency,
		Os:  c.WRProcess,
		Or:  c.AckLatency,
		Gap: c.MsgGap,
		G:   c.LinkByteTime,
	}
}

// Fabric is a simulated interconnect instance.
type Fabric struct {
	eng   *sim.Engine
	cfg   Config
	ports []*Port
	// ctrlFree recycles control-plane delivery records so SendControl does
	// not allocate per message once warm.
	ctrlFree []*ctrlDelivery
}

// New creates a fabric on the engine. It panics on invalid configuration
// (a construction-time programming error).
func New(e *sim.Engine, cfg Config) *Fabric {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Fabric{eng: e, cfg: cfg}
}

// Engine returns the simulation engine.
func (f *Fabric) Engine() *sim.Engine { return f.eng }

// Config returns the cost model.
func (f *Fabric) Config() Config { return f.cfg }

// Port is one network endpoint (one HCA's link).
type Port struct {
	fab  *Fabric
	id   int
	name string

	egressFreeAt  sim.Time
	ingressFreeAt sim.Time

	ctrlHandler func(from *Port, payload any)
	// ctrlLastAt enforces FIFO control delivery per destination port.
	ctrlLastAt sim.Time

	// Statistics.
	bytesSent     int64
	bytesReceived int64
	msgsSent      int64
}

// NewPort adds an endpoint to the fabric.
func (f *Fabric) NewPort(name string) *Port {
	p := &Port{fab: f, id: len(f.ports), name: name}
	f.ports = append(f.ports, p)
	return p
}

// Name returns the port's name.
func (p *Port) Name() string { return p.name }

// Fabric returns the fabric this port is attached to.
func (p *Port) Fabric() *Fabric { return p.fab }

// BytesSent returns the cumulative payload bytes injected by this port.
func (p *Port) BytesSent() int64 { return p.bytesSent }

// BytesReceived returns the cumulative payload bytes delivered to this port.
func (p *Port) BytesReceived() int64 { return p.bytesReceived }

// MessagesSent returns the number of messages injected by this port.
func (p *Port) MessagesSent() int64 { return p.msgsSent }

// SetControlHandler installs the callback for control-plane messages
// addressed to this port.
func (p *Port) SetControlHandler(h func(from *Port, payload any)) {
	p.ctrlHandler = h
}

// ctrlDelivery is one in-flight control-plane message, pre-bound to the
// delivery event so SendControl schedules without a closure.
type ctrlDelivery struct {
	src, dst *Port
	payload  any
}

// fireCtrlDeliver hands an arrived control message to the destination
// handler and recycles the delivery record.
func fireCtrlDeliver(_ sim.Time, arg any) {
	cd := arg.(*ctrlDelivery)
	src, dst, payload := cd.src, cd.dst, cd.payload
	// Recycle before invoking the handler: handlers may send further
	// control messages and can then reuse this record.
	cd.src, cd.dst, cd.payload = nil, nil, nil
	fab := dst.fab
	fab.ctrlFree = append(fab.ctrlFree, cd)
	if dst.ctrlHandler == nil {
		panic(fmt.Sprintf("fabric: control message to %q with no handler", dst.name))
	}
	dst.ctrlHandler(src, payload)
}

// SendControl delivers payload to dst's control handler after the
// control-plane latency. Delivery order to a given destination is FIFO
// across all senders (a deterministic total order, like a serialized
// management network).
func (p *Port) SendControl(dst *Port, payload any) {
	e := p.fab.eng
	at := e.Now().Add(p.fab.cfg.CtrlLatency)
	if at <= dst.ctrlLastAt {
		at = dst.ctrlLastAt + 1
	}
	dst.ctrlLastAt = at
	var cd *ctrlDelivery
	if n := len(p.fab.ctrlFree); n > 0 {
		cd = p.fab.ctrlFree[n-1]
		p.fab.ctrlFree = p.fab.ctrlFree[:n-1]
	} else {
		cd = new(ctrlDelivery)
	}
	cd.src, cd.dst, cd.payload = p, dst, payload
	e.AtCall(at, fireCtrlDeliver, cd)
}

// Message is one fabric-level transfer (the realization of one work
// request). OnDeliver runs at the virtual instant the last byte is placed
// at the destination; OnAck runs when the sender's hardware completion
// would be generated.
type Message struct {
	Bytes int
	// Inline marks a work request whose payload was written through the
	// doorbell (inlining/BlueFlame): the NIC charges InlineWRProcess
	// instead of WRProcess.
	Inline    bool
	OnDeliver func(at sim.Time)
	OnAck     func(at sim.Time)
}

// Flow is a unidirectional reliable ordered message pipeline between two
// ports (one QP's send direction). Messages injected on one flow are
// processed strictly in order; distinct flows contend for the shared link
// at burst granularity.
type Flow struct {
	fab *Fabric
	src *Port
	dst *Port

	// queue[head:] are the messages not yet fully injected. Dequeuing
	// advances head; when the queue drains, both reset so the backing
	// array is reused instead of reallocated.
	queue []*flowMsg
	head  int
	// free recycles flowMsg structs: a message returns to the list once
	// its delivery (and ack, if requested) events have fired, so
	// steady-state Send allocates nothing after warm-up.
	free   []*flowMsg
	active bool

	// paceFreeAt is when the flow may inject its next burst (per-QP rate).
	paceFreeAt sim.Time
	// msgFreeAt is when the flow may begin processing its next WR.
	msgFreeAt sim.Time
}

// flowMsg is the in-flight state of one message. It doubles as the
// pre-bound argument of the flow's step/deliver/ack events, so the whole
// lifetime of a message schedules no closures.
type flowMsg struct {
	fl          *Flow
	msg         Message
	remaining   int
	lastArrival sim.Time
	ackAt       sim.Time
}

// Typed-event trampolines for the flow pipeline (see sim.AtCall).
//partib:hotpath
func fireFlowStep(_ sim.Time, arg any)    { arg.(*Flow).step() }
//partib:hotpath
func fireFlowDeliver(_ sim.Time, arg any) { arg.(*flowMsg).deliver() }
//partib:hotpath
func fireFlowAck(_ sim.Time, arg any)     { arg.(*flowMsg).ack() }

// NewFlow creates a flow from src to dst. Loopback (src == dst) is allowed.
func (f *Fabric) NewFlow(src, dst *Port) *Flow {
	if src == nil || dst == nil {
		panic("fabric: NewFlow with nil port")
	}
	if src.fab != f || dst.fab != f {
		panic("fabric: NewFlow ports belong to a different fabric")
	}
	return &Flow{fab: f, src: src, dst: dst}
}

// Src returns the sending port.
func (fl *Flow) Src() *Port { return fl.src }

// Dst returns the receiving port.
func (fl *Flow) Dst() *Port { return fl.dst }

// Queued returns the number of messages not yet fully injected.
func (fl *Flow) Queued() int { return len(fl.queue) - fl.head }

// Send enqueues a message on the flow. Zero-byte messages still traverse
// the wire (headers move). Negative sizes panic.
//partib:hotpath
func (fl *Flow) Send(m Message) {
	if m.Bytes < 0 {
		panic("fabric: negative message size")
	}
	fl.src.msgsSent++
	fl.src.bytesSent += int64(m.Bytes)
	var fm *flowMsg
	if n := len(fl.free); n > 0 {
		fm = fl.free[n-1]
		fl.free[n-1] = nil
		fl.free = fl.free[:n-1]
	} else {
		fm = &flowMsg{fl: fl} //partlint:allow hotpathalloc free-list miss; steady state recycles
	}
	fm.msg, fm.remaining, fm.lastArrival = m, m.Bytes, 0
	fl.queue = append(fl.queue, fm) //partlint:allow hotpathalloc amortized; capacity is reused via queue[:0]
	if !fl.active {
		fl.active = true
		fl.startHead()
	}
}

// release returns a flowMsg whose events have all fired to the free list,
// dropping callback references so captured state can be collected.
//partib:hotpath
func (fl *Flow) release(fm *flowMsg) {
	fm.msg = Message{}
	fl.free = append(fl.free, fm) //partlint:allow hotpathalloc amortized free-list growth
}

// startHead begins WR processing for the message at the head of the queue.
//partib:hotpath
func (fl *Flow) startHead() {
	e := fl.fab.eng
	start := e.Now()
	if fl.msgFreeAt > start {
		start = fl.msgFreeAt
	}
	proc := fl.fab.cfg.WRProcess
	if fl.queue[fl.head].msg.Inline {
		proc = fl.fab.cfg.InlineWRProcess
	}
	injectAt := start.Add(proc)
	if fl.paceFreeAt > injectAt {
		injectAt = fl.paceFreeAt
	}
	e.AtCall(injectAt, fireFlowStep, fl)
}

// step injects one burst of the head message, then schedules the next
// action. It runs as an engine event.
//partib:hotpath
func (fl *Flow) step() {
	e := fl.fab.eng
	cfg := fl.fab.cfg
	fm := fl.queue[fl.head]

	// Zero-byte messages occupy the link for their header only.
	burst := fm.remaining
	if burst > cfg.BurstBytes {
		burst = cfg.BurstBytes
	}
	packets := loggp.Packets(burst, cfg.MTU)
	wireBytes := burst + packets*cfg.PacketHeader

	// Grab the shared egress link (FIFO cursor).
	grant := e.Now()
	if fl.src.egressFreeAt > grant {
		grant = fl.src.egressFreeAt
	}
	tx := time.Duration(float64(wireBytes) * cfg.LinkByteTime)
	egressEnd := grant.Add(tx)
	fl.src.egressFreeAt = egressEnd

	// Per-flow pacing for the next burst.
	pace := time.Duration(float64(burst) * cfg.PerQPByteTime)
	fl.paceFreeAt = grant.Add(pace)
	if fl.paceFreeAt < egressEnd {
		fl.paceFreeAt = egressEnd
	}

	// Ingress serialization at the destination.
	arrive := egressEnd.Add(cfg.WireLatency)
	if fl.dst.ingressFreeAt > arrive {
		arrive = fl.dst.ingressFreeAt
	}
	fl.dst.ingressFreeAt = arrive
	if arrive > fm.lastArrival {
		fm.lastArrival = arrive
	}

	fm.remaining -= burst
	if fm.remaining > 0 {
		e.AtCall(fl.paceFreeAt, fireFlowStep, fl)
		return
	}

	// Message fully injected: finalize delivery and completion.
	fl.finish(fm, egressEnd)
}

// finish schedules delivery/ack events and advances to the next message.
// The flowMsg itself is the events' pre-bound argument; it returns to the
// free list once the last of them has fired (the ack when one is
// requested, otherwise the delivery — the delivery event is scheduled
// first, so with a zero AckLatency the FIFO seq tiebreak still runs it
// before the ack).
//partib:hotpath
func (fl *Flow) finish(fm *flowMsg, egressEnd sim.Time) {
	e := fl.fab.eng
	cfg := fl.fab.cfg
	fl.msgFreeAt = egressEnd.Add(cfg.MsgGap)

	arrival := fm.lastArrival
	e.AtCall(arrival, fireFlowDeliver, fm)
	if fm.msg.OnAck != nil {
		fm.ackAt = arrival.Add(cfg.AckLatency)
		e.AtCall(fm.ackAt, fireFlowAck, fm)
	}

	fl.queue[fl.head] = nil
	fl.head++
	if fl.head == len(fl.queue) {
		fl.queue = fl.queue[:0]
		fl.head = 0
		fl.active = false
		return
	}
	fl.startHead()
}

// deliver runs at the instant the last byte is placed at the destination.
//partib:hotpath
func (fm *flowMsg) deliver() {
	fm.fl.dst.bytesReceived += int64(fm.msg.Bytes)
	if fn := fm.msg.OnDeliver; fn != nil {
		fn(fm.lastArrival)
	}
	if fm.msg.OnAck == nil {
		fm.fl.release(fm)
	}
}

// ack runs when the sender's hardware completion would be generated.
//partib:hotpath
func (fm *flowMsg) ack() {
	fn, at := fm.msg.OnAck, fm.ackAt
	fm.fl.release(fm)
	fn(at)
}
