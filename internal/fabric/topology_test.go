package fabric

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/sim"
)

func TestParseTopology(t *testing.T) {
	cases := []struct {
		spec string
		name string
	}{
		{"", "single-link"},
		{"single-link", "single-link"},
		{"two-level:rack=4", "two-level:rack=4,extra=750ns"},
		{"two-level:rack=4,extra=2us", "two-level:rack=4,extra=2µs"},
		{"fat-tree:k=8", "fat-tree:k=8"},
		{"fat-tree:k=4,cable=1us,down=2us,G=0.1", "fat-tree:k=4"},
		{"dragonfly:groups=3,routers=2,hosts=1", "dragonfly:groups=3,routers=2,hosts=1"},
	}
	for _, c := range cases {
		topo, err := ParseTopology(c.spec)
		if err != nil {
			t.Errorf("ParseTopology(%q): %v", c.spec, err)
			continue
		}
		if topo.Name() != c.name {
			t.Errorf("ParseTopology(%q).Name() = %q, want %q", c.spec, topo.Name(), c.name)
		}
	}
	bad := []string{
		"mesh:k=3",
		"fat-tree:k=3",          // odd radix
		"fat-tree:k=4,bogus=1",  // unknown key
		"fat-tree:k=x",          // bad int
		"two-level:rack=0",      // no rack size
		"dragonfly:groups=1",    // single group
		"fat-tree:k=4,cable=5",  // missing duration unit
		"dragonfly:groups=3,routers=2,hosts=1,global=100ns", // < 2*cable
	}
	for _, spec := range bad {
		if _, err := ParseTopology(spec); err == nil {
			t.Errorf("ParseTopology(%q) accepted", spec)
		}
	}
}

func TestValidateRejectsToposWithLegacyRackFields(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Topo = SingleLink()
	cfg.RackSize = 4
	if err := cfg.Validate(); err == nil {
		t.Fatal("Topo + RackSize accepted")
	}
	cfg = DefaultConfig()
	cfg.Topo = SingleLink()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("Topo alone rejected: %v", err)
	}
}

// runPattern drives a small many-to-one plus pairwise pattern and returns
// every delivery and ack timestamp, in a traffic-determined order.
func runPattern(t *testing.T, cfg Config) []sim.Time {
	t.Helper()
	e := sim.NewEngine()
	f := New(e, cfg)
	const n = 6
	ports := make([]*Port, n)
	for i := range ports {
		ports[i] = f.NewPort("p")
	}
	var stamps []sim.Time
	for i := 1; i < n; i++ {
		fl := f.NewFlowID(ports[i], ports[0], uint64(i))
		fl.Send(Message{
			Bytes:     100 << uint(i),
			OnDeliver: func(at sim.Time) { stamps = append(stamps, at) },
			OnAck:     func(at sim.Time) { stamps = append(stamps, at) },
		})
	}
	fl := f.NewFlowID(ports[0], ports[n-1], 99)
	fl.Send(Message{
		Bytes:     200000, // several bursts
		OnDeliver: func(at sim.Time) { stamps = append(stamps, at) },
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return stamps
}

// TestSingleLinkTopologyByteIdentical is the core differential: a fabric
// built with Topo=SingleLink() must produce byte-identical timestamps to
// one built with no topology at all.
func TestSingleLinkTopologyByteIdentical(t *testing.T) {
	base := runPattern(t, DefaultConfig())
	cfg := DefaultConfig()
	cfg.Topo = SingleLink()
	withTopo := runPattern(t, cfg)
	if len(base) != len(withTopo) {
		t.Fatalf("event counts differ: %d vs %d", len(base), len(withTopo))
	}
	for i := range base {
		if base[i] != withTopo[i] {
			t.Fatalf("timestamp %d differs: %v vs %v", i, base[i], withTopo[i])
		}
	}
}

// TestTwoLevelShimMatchesLegacyRackFields pins the deprecation shim: the
// legacy RackSize/InterRackExtra fields and an explicit TwoLevel topology
// must be byte-identical.
func TestTwoLevelShimMatchesLegacyRackFields(t *testing.T) {
	legacy := DefaultConfig()
	legacy.RackSize = 2
	legacy.InterRackExtra = 750 * time.Nanosecond
	viaTopo := DefaultConfig()
	viaTopo.Topo = TwoLevel(2, 750*time.Nanosecond)
	a, b := runPattern(t, legacy), runPattern(t, viaTopo)
	if len(a) != len(b) {
		t.Fatalf("event counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("timestamp %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

// randomGraphTopoConfig draws a fabric config with a random fat-tree or
// dragonfly topology and random (valid) latencies.
func randomGraphTopoConfig(r *rand.Rand) (Config, error) {
	cfg := DefaultConfig()
	cfg.WireLatency = time.Duration(1 + r.Intn(3000)) * time.Nanosecond
	cable := time.Duration(1 + r.Intn(2000)) * time.Nanosecond
	down := time.Duration(1 + r.Intn(3000)) * time.Nanosecond
	var err error
	if r.Intn(2) == 0 {
		cfg.Topo, err = NewFatTree(FatTreeConfig{K: 2 * (1 + r.Intn(4)), Cable: cable, Down: down})
	} else {
		global := 2*cable + time.Duration(r.Intn(5000))*time.Nanosecond
		cfg.Topo, err = NewDragonfly(DragonflyConfig{
			Groups: 2 + r.Intn(4), Routers: 1 + r.Intn(3), HostsPer: 1 + r.Intn(3),
			Cable: cable, Global: global, Down: down,
		})
	}
	return cfg, err
}

// TestPairLatencyProperties checks the topology invariants the shard
// lookahead derivation relies on, over randomly generated fat-tree and
// dragonfly instances: PairLatency is symmetric, dominates the global
// Lookahead floor, and satisfies the triangle inequality.
func TestPairLatencyProperties(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		cfg, err := randomGraphTopoConfig(r)
		if err != nil {
			t.Logf("seed %d: generator error: %v", seed, err)
			return false
		}
		topo := cfg.Topology()
		floor := cfg.Lookahead()
		h := topo.Hosts()
		for trial := 0; trial < 64; trial++ {
			a, b, c := r.Intn(h), r.Intn(h), r.Intn(h)
			ab, ba := topo.PairLatency(a, b), topo.PairLatency(b, a)
			if ab != ba {
				t.Logf("seed %d %s: PairLatency(%d,%d)=%v != PairLatency(%d,%d)=%v",
					seed, topo.Name(), a, b, ab, b, a, ba)
				return false
			}
			if ab < floor {
				t.Logf("seed %d %s: PairLatency(%d,%d)=%v below floor %v",
					seed, topo.Name(), a, b, ab, floor)
				return false
			}
			ac, bc := topo.PairLatency(a, c), topo.PairLatency(b, c)
			if ac > ab+bc {
				t.Logf("seed %d %s: triangle violated: d(%d,%d)=%v > d(%d,%d)+d(%d,%d)=%v",
					seed, topo.Name(), a, c, ac, a, b, b, c, ab+bc)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestRoutesAreValidAndEqualCost walks every generated route and checks
// it is link-connected from the source's switch to the destination host,
// and that its latency sum equals PairExtra — the equal-cost property the
// analytic lookahead derivation assumes for every ECMP candidate.
func TestRoutesAreValidAndEqualCost(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		cfg, err := randomGraphTopoConfig(r)
		if err != nil {
			return false
		}
		topo := cfg.Topology()
		h := topo.Hosts()
		// adjacent switch of each host = From of its down link.
		adj := make([]int, h)
		for i := 0; i < topo.Links(); i++ {
			if l := topo.LinkAt(i); l.To < h {
				adj[l.To] = l.From
			}
		}
		for trial := 0; trial < 64; trial++ {
			src, dst := r.Intn(h), r.Intn(h)
			flowID := r.Uint64() % 64
			route := topo.Route(src, dst, flowID)
			if len(route) == 0 {
				t.Logf("seed %d %s: empty route %d->%d", seed, topo.Name(), src, dst)
				return false
			}
			var sum time.Duration
			at := adj[src]
			for _, id := range route {
				l := topo.LinkAt(id)
				if l.From != at {
					t.Logf("seed %d %s: route %d->%d: link %q starts at node %d, cursor at %d",
						seed, topo.Name(), src, dst, l.Name, l.From, at)
					return false
				}
				at = l.To
				sum += l.Latency
			}
			if at != dst {
				t.Logf("seed %d %s: route %d->%d ends at node %d", seed, topo.Name(), src, dst, at)
				return false
			}
			if sum != topo.PairExtra(src, dst) {
				t.Logf("seed %d %s: route %d->%d (flow %d) latency %v != PairExtra %v",
					seed, topo.Name(), src, dst, flowID, sum, topo.PairExtra(src, dst))
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestRouteDeterministicAndSpreading pins the ECMP hash: the same flow
// identity always takes the same path, and distinct identities between a
// cross-edge fat-tree pair spread over more than one spine.
func TestRouteDeterministicAndSpreading(t *testing.T) {
	topo, err := NewFatTree(FatTreeConfig{K: 8})
	if err != nil {
		t.Fatal(err)
	}
	src, dst := 0, topo.Hosts()-1
	spines := map[int]bool{}
	for flowID := uint64(0); flowID < 16; flowID++ {
		r1 := topo.Route(src, dst, flowID)
		r2 := topo.Route(src, dst, flowID)
		if len(r1) != 3 {
			t.Fatalf("cross-edge route length %d, want 3", len(r1))
		}
		for i := range r1 {
			if r1[i] != r2[i] {
				t.Fatalf("flow %d: route not deterministic: %v vs %v", flowID, r1, r2)
			}
		}
		spines[r1[0]] = true
	}
	if len(spines) < 2 {
		t.Fatalf("16 flow identities all hashed onto one spine path")
	}
}

// TestRoutedSingleFlowLatency pins the routed pipeline's uncontended
// timing: store-and-forward at burst granularity over each hop's
// {latency, byteTime} plus the host injection leg.
func TestRoutedSingleFlowLatency(t *testing.T) {
	topo, err := NewFatTree(FatTreeConfig{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Topo = topo
	e := sim.NewEngine()
	f := New(e, cfg)
	ports := make([]*Port, topo.Hosts())
	for i := range ports {
		ports[i] = f.NewPort("h")
	}
	src, dst := ports[0], ports[topo.Hosts()-1] // cross-edge: 3-hop route
	fl := f.NewFlowID(src, dst, 7)
	const k = 4096
	var deliveredAt, ackAt sim.Time
	fl.Send(Message{
		Bytes:     k,
		OnDeliver: func(at sim.Time) { deliveredAt = at },
		OnAck:     func(at sim.Time) { ackAt = at },
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	wireBytes := k + (k/cfg.MTU)*cfg.PacketHeader
	tx := time.Duration(float64(wireBytes) * cfg.LinkByteTime)
	cable, down := 500*time.Nanosecond, time.Microsecond
	want := sim.Time(0).
		Add(cfg.WRProcess).
		Add(tx).              // host egress serialization
		Add(cfg.WireLatency). // injection propagation
		Add(tx).Add(cable).   // edge->spine
		Add(tx).Add(cable).   // spine->edge
		Add(tx).Add(down)     // edge->host
	if deliveredAt != want {
		t.Errorf("routed delivery at %v, want %v", deliveredAt, want)
	}
	extra := 2*cable + down
	if wantAck := want.Add(cfg.AckLatency + extra); ackAt != wantAck {
		t.Errorf("routed ack at %v, want %v", ackAt, wantAck)
	}
	// The fabric observed the traffic on exactly the route's links.
	stats := f.LinkStats()
	var carried int
	for _, s := range stats {
		if s.Charges > 0 {
			carried++
			if s.Bytes != int64(wireBytes) {
				t.Errorf("link %q carried %d bytes, want %d", s.Link.Name, s.Bytes, wireBytes)
			}
		}
	}
	if carried != 3 {
		t.Errorf("%d links carried traffic, want 3", carried)
	}
}

// TestIncastContendsOnDownLink drives a 3:1 incast into one fat-tree host
// and checks the shared down link serializes the bursts: the last
// delivery must trail an uncontended single-flow delivery by at least the
// two extra bursts' serialization time, and the down link must report
// queueing delay.
func TestIncastContendsOnDownLink(t *testing.T) {
	topo, err := NewFatTree(FatTreeConfig{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	run := func(senders int) (sim.Time, []LinkStats) {
		cfg := DefaultConfig()
		cfg.Topo = topo
		e := sim.NewEngine()
		f := New(e, cfg)
		ports := make([]*Port, topo.Hosts())
		for i := range ports {
			ports[i] = f.NewPort("h")
		}
		const k = 65536
		var last sim.Time
		for s := 0; s < senders; s++ {
			fl := f.NewFlowID(ports[s+2], ports[0], uint64(s))
			fl.Send(Message{Bytes: k, OnDeliver: func(at sim.Time) {
				if at > last {
					last = at
				}
			}})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return last, f.LinkStats()
	}
	solo, _ := run(1)
	incast, stats := run(3)
	cfg := DefaultConfig()
	wireBytes := 65536 + (65536/cfg.MTU)*cfg.PacketHeader
	tx := time.Duration(float64(wireBytes) * cfg.LinkByteTime)
	if incast < solo.Add(2*tx) {
		t.Errorf("3:1 incast last delivery %v; want >= solo %v + 2 bursts %v", incast, solo, 2*tx)
	}
	var queued bool
	for _, s := range stats {
		if s.Link.To == 0 && s.MaxQueue > 0 {
			queued = true
			if p99 := s.QueuePercentile(0.99); p99 == 0 {
				t.Errorf("down link reports MaxQueue %v but zero p99", s.MaxQueue)
			}
		}
	}
	if !queued {
		t.Error("incast produced no queueing delay on the victim's down link")
	}
}
