package fabric

import (
	"testing"
	"time"

	"repro/internal/loggp"
	"repro/internal/sim"
)

func testFabric(t *testing.T) (*sim.Engine, *Fabric) {
	t.Helper()
	e := sim.NewEngine()
	return e, New(e, DefaultConfig())
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.MTU = 0 },
		func(c *Config) { c.BurstBytes = c.MTU - 1 },
		func(c *Config) { c.PacketHeader = -1 },
		func(c *Config) { c.LinkByteTime = 0 },
		func(c *Config) { c.PerQPByteTime = c.LinkByteTime / 2 },
		func(c *Config) { c.WireLatency = -time.Nanosecond },
		func(c *Config) { c.MsgGap = -time.Nanosecond },
	}
	for i, mut := range bad {
		c := DefaultConfig()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestTrueParamsMirrorsConfig(t *testing.T) {
	c := DefaultConfig()
	p := c.TrueParams()
	if p.L != c.WireLatency || p.G != c.LinkByteTime || p.Gap != c.MsgGap {
		t.Fatalf("TrueParams = %+v", p)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSingleMessageLatency(t *testing.T) {
	e, f := testFabric(t)
	cfg := f.Config()
	a, b := f.NewPort("a"), f.NewPort("b")
	fl := f.NewFlow(a, b)

	const k = 4096
	var deliveredAt, ackAt sim.Time
	fl.Send(Message{
		Bytes:     k,
		OnDeliver: func(at sim.Time) { deliveredAt = at },
		OnAck:     func(at sim.Time) { ackAt = at },
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	wireBytes := k + loggp.Packets(k, cfg.MTU)*cfg.PacketHeader
	want := sim.Time(0).
		Add(cfg.WRProcess).
		Add(time.Duration(float64(wireBytes) * cfg.LinkByteTime)).
		Add(cfg.WireLatency)
	if deliveredAt != want {
		t.Errorf("delivered at %v, want %v", deliveredAt, want)
	}
	if ackAt != want.Add(cfg.AckLatency) {
		t.Errorf("ack at %v, want %v", ackAt, want.Add(cfg.AckLatency))
	}
}

func TestZeroByteMessageMoves(t *testing.T) {
	e, f := testFabric(t)
	a, b := f.NewPort("a"), f.NewPort("b")
	fl := f.NewFlow(a, b)
	delivered := false
	fl.Send(Message{Bytes: 0, OnDeliver: func(sim.Time) { delivered = true }})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !delivered {
		t.Fatal("zero-byte message not delivered")
	}
	if e.Now() == 0 {
		t.Fatal("zero-byte message took zero time (headers must travel)")
	}
}

func TestZeroByteInlineMessage(t *testing.T) {
	// A zero-byte inline send still serializes one header packet, but the
	// NIC charges InlineWRProcess (payload rides the doorbell write) instead
	// of the WQE-fetch cost WRProcess.
	e, f := testFabric(t)
	cfg := f.Config()
	a, b := f.NewPort("a"), f.NewPort("b")
	fl := f.NewFlow(a, b)
	var deliveredAt, ackAt sim.Time
	fl.Send(Message{
		Bytes:     0,
		Inline:    true,
		OnDeliver: func(at sim.Time) { deliveredAt = at },
		OnAck:     func(at sim.Time) { ackAt = at },
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	headerBytes := loggp.Packets(0, cfg.MTU) * cfg.PacketHeader
	want := sim.Time(0).
		Add(cfg.InlineWRProcess).
		Add(time.Duration(float64(headerBytes) * cfg.LinkByteTime)).
		Add(cfg.WireLatency)
	if deliveredAt != want {
		t.Errorf("inline zero-byte delivered at %v, want %v", deliveredAt, want)
	}
	if ackAt != want.Add(cfg.AckLatency) {
		t.Errorf("ack at %v, want %v", ackAt, want.Add(cfg.AckLatency))
	}
	if b.BytesReceived() != 0 {
		t.Errorf("receiver counted %d payload bytes, want 0", b.BytesReceived())
	}
	if a.MessagesSent() != 1 {
		t.Errorf("sender counted %d messages, want 1", a.MessagesSent())
	}
}

func TestInlineSkipsWRProcess(t *testing.T) {
	// Same payload, inline vs not: delivery times must differ by exactly
	// WRProcess - InlineWRProcess.
	deliverAt := func(inline bool) sim.Time {
		e, f := testFabric(t)
		fl := f.NewFlow(f.NewPort("a"), f.NewPort("b"))
		var at sim.Time
		fl.Send(Message{Bytes: 64, Inline: inline, OnDeliver: func(a sim.Time) { at = a }})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return at
	}
	cfg := DefaultConfig()
	plain, inline := deliverAt(false), deliverAt(true)
	if got, want := plain.Sub(inline), cfg.WRProcess-cfg.InlineWRProcess; got != want {
		t.Errorf("inline saves %v, want %v", got, want)
	}
}

// TestFlowSteadyStateZeroAllocs is the allocation regression gate on the
// fabric hot path: once the event and flowMsg free lists are warm, a full
// message lifetime (send, multi-burst injection, delivery, ack) allocates
// nothing.
func TestFlowSteadyStateZeroAllocs(t *testing.T) {
	e, f := testFabric(t)
	a, b := f.NewPort("a"), f.NewPort("b")
	fl := f.NewFlow(a, b)
	delivered, acked := 0, 0
	onDeliver := func(sim.Time) { delivered++ }
	onAck := func(sim.Time) { acked++ }
	round := func() {
		// 200 KiB spans multiple bursts, exercising step rescheduling.
		fl.Send(Message{Bytes: 200 << 10, OnDeliver: onDeliver, OnAck: onAck})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ { // warm the free lists
		round()
	}
	if allocs := testing.AllocsPerRun(100, round); allocs != 0 {
		t.Errorf("steady-state message costs %.1f allocs, want 0", allocs)
	}
	if delivered == 0 || acked != delivered {
		t.Fatalf("delivered %d, acked %d", delivered, acked)
	}
}

// BenchmarkFlowMessage measures one full message lifetime on a warm flow.
func BenchmarkFlowMessage(b *testing.B) {
	e := sim.NewEngine()
	f := New(e, DefaultConfig())
	fl := f.NewFlow(f.NewPort("a"), f.NewPort("b"))
	onAck := func(sim.Time) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fl.Send(Message{Bytes: 4096, OnAck: onAck})
		if err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func TestNegativeSizePanics(t *testing.T) {
	_, f := testFabric(t)
	a, b := f.NewPort("a"), f.NewPort("b")
	fl := f.NewFlow(a, b)
	defer func() {
		if recover() == nil {
			t.Fatal("negative message size did not panic")
		}
	}()
	fl.Send(Message{Bytes: -1})
}

func TestFlowDeliversInOrder(t *testing.T) {
	e, f := testFabric(t)
	a, b := f.NewPort("a"), f.NewPort("b")
	fl := f.NewFlow(a, b)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		fl.Send(Message{Bytes: 1024 * (5 - i), OnDeliver: func(sim.Time) { order = append(order, i) }})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("delivery order %v", order)
		}
	}
}

func TestPerFlowBandwidthCap(t *testing.T) {
	// One flow alone must be limited by PerQPByteTime, not LinkByteTime.
	e, f := testFabric(t)
	cfg := f.Config()
	a, b := f.NewPort("a"), f.NewPort("b")
	fl := f.NewFlow(a, b)
	const size = 32 << 20
	var deliveredAt sim.Time
	fl.Send(Message{Bytes: size, OnDeliver: func(at sim.Time) { deliveredAt = at }})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	gbps := float64(size) / float64(deliveredAt.Duration().Seconds()) / 1e9
	perQP := 1 / cfg.PerQPByteTime // GB/s
	link := 1 / cfg.LinkByteTime
	if gbps > perQP*1.02 {
		t.Errorf("single flow %.2f GB/s exceeds per-QP cap %.2f", gbps, perQP)
	}
	if gbps < perQP*0.95 {
		t.Errorf("single flow %.2f GB/s well below per-QP cap %.2f", gbps, perQP)
	}
	_ = link
}

func TestTwoFlowsSaturateLink(t *testing.T) {
	// Two flows from the same port must exceed one flow's cap and approach
	// the link rate — the effect behind the paper's Figure 7.
	e, f := testFabric(t)
	cfg := f.Config()
	a, b := f.NewPort("a"), f.NewPort("b")
	const size = 32 << 20
	var last sim.Time
	done := func(at sim.Time) {
		if at > last {
			last = at
		}
	}
	f.NewFlow(a, b).Send(Message{Bytes: size, OnDeliver: done})
	f.NewFlow(a, b).Send(Message{Bytes: size, OnDeliver: done})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	gbps := float64(2*size) / last.Duration().Seconds() / 1e9
	perQP := 1 / cfg.PerQPByteTime
	link := 1 / cfg.LinkByteTime
	if gbps <= perQP {
		t.Errorf("two flows %.2f GB/s did not beat single-flow cap %.2f", gbps, perQP)
	}
	if gbps > link*1.02 {
		t.Errorf("two flows %.2f GB/s exceed link rate %.2f", gbps, link)
	}
}

func TestSmallMessageInterleavesWithBulk(t *testing.T) {
	// A small message on flow 2 posted just after a huge message on flow 1
	// must not wait for the whole bulk transfer (burst-granularity
	// arbitration).
	e, f := testFabric(t)
	a, b := f.NewPort("a"), f.NewPort("b")
	bulk, small := f.NewFlow(a, b), f.NewFlow(a, b)
	var bulkAt, smallAt sim.Time
	bulk.Send(Message{Bytes: 64 << 20, OnDeliver: func(at sim.Time) { bulkAt = at }})
	e.After(10*time.Microsecond, func() {
		small.Send(Message{Bytes: 4096, OnDeliver: func(at sim.Time) { smallAt = at }})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if smallAt >= bulkAt {
		t.Fatalf("small message (%v) blocked behind bulk (%v)", smallAt, bulkAt)
	}
	if smallAt.Duration() > time.Millisecond {
		t.Fatalf("small message delayed %v; arbitration granularity too coarse", smallAt)
	}
}

func TestMsgGapSpacesMessages(t *testing.T) {
	e, f := testFabric(t)
	cfg := f.Config()
	a, b := f.NewPort("a"), f.NewPort("b")
	fl := f.NewFlow(a, b)
	var times []sim.Time
	for i := 0; i < 2; i++ {
		fl.Send(Message{Bytes: 1, OnDeliver: func(at sim.Time) { times = append(times, at) }})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	gap := times[1].Sub(times[0])
	// Second message is spaced by at least MsgGap + WRProcess.
	if gap < cfg.MsgGap+cfg.WRProcess {
		t.Fatalf("inter-message spacing %v < g+WRProcess", gap)
	}
}

func TestLoopbackFlow(t *testing.T) {
	e, f := testFabric(t)
	a := f.NewPort("a")
	fl := f.NewFlow(a, a)
	ok := false
	fl.Send(Message{Bytes: 100, OnDeliver: func(sim.Time) { ok = true }})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("loopback message not delivered")
	}
}

func TestPortStatistics(t *testing.T) {
	e, f := testFabric(t)
	a, b := f.NewPort("a"), f.NewPort("b")
	fl := f.NewFlow(a, b)
	fl.Send(Message{Bytes: 1000})
	fl.Send(Message{Bytes: 2000})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if a.BytesSent() != 3000 || a.MessagesSent() != 2 {
		t.Errorf("sender stats: %d bytes, %d msgs", a.BytesSent(), a.MessagesSent())
	}
	if b.BytesReceived() != 3000 {
		t.Errorf("receiver stats: %d bytes", b.BytesReceived())
	}
}

func TestControlPlaneFIFOAndLatency(t *testing.T) {
	e, f := testFabric(t)
	cfg := f.Config()
	a, b := f.NewPort("a"), f.NewPort("b")
	var got []int
	var at []sim.Time
	b.SetControlHandler(func(from *Port, payload any) {
		if from != a {
			t.Errorf("control from %v, want a", from.Name())
		}
		got = append(got, payload.(int))
		at = append(at, e.Now())
	})
	for i := 0; i < 3; i++ {
		a.SendControl(b, i)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("control order %v", got)
		}
	}
	if at[0] != sim.Time(cfg.CtrlLatency) {
		t.Errorf("first control at %v, want %v", at[0], cfg.CtrlLatency)
	}
	if !(at[0] < at[1] && at[1] < at[2]) {
		t.Errorf("control deliveries not strictly ordered: %v", at)
	}
}

func TestControlWithoutHandlerPanics(t *testing.T) {
	e, f := testFabric(t)
	a, b := f.NewPort("a"), f.NewPort("b")
	a.SendControl(b, "x")
	defer func() {
		if recover() == nil {
			t.Fatal("control delivery without handler did not panic")
		}
	}()
	_ = e.Run()
}

func TestNewFlowValidation(t *testing.T) {
	e1 := sim.NewEngine()
	f1 := New(e1, DefaultConfig())
	e2 := sim.NewEngine()
	f2 := New(e2, DefaultConfig())
	p1 := f1.NewPort("p1")
	p2 := f2.NewPort("p2")
	for name, fn := range map[string]func(){
		"nil port":      func() { f1.NewFlow(p1, nil) },
		"cross fabrics": func() { f1.NewFlow(p1, p2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestAggregationBeatsManySmallMessages(t *testing.T) {
	// The core premise of the paper: for medium payloads, one large WR
	// completes sooner than 32 small WRs on the same flow, because each WR
	// pays WRProcess + MsgGap + per-packet headers.
	cfgRun := func(parts int) sim.Time {
		e := sim.NewEngine()
		f := New(e, DefaultConfig())
		a, b := f.NewPort("a"), f.NewPort("b")
		fl := f.NewFlow(a, b)
		const total = 128 << 10
		var last sim.Time
		for i := 0; i < parts; i++ {
			fl.Send(Message{Bytes: total / parts, OnDeliver: func(at sim.Time) {
				if at > last {
					last = at
				}
			}})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return last
	}
	one, many := cfgRun(1), cfgRun(32)
	if one >= many {
		t.Fatalf("aggregated %v not faster than 32 messages %v", one, many)
	}
}
