// Topology generalizes the fabric from one shared link to a multi-switch
// interconnect graph. A Topology comes in two modes:
//
//   - Flat topologies carry no switch state at all: every host pair is
//     connected directly and the topology only contributes a per-pair
//     extra propagation latency on top of Config.WireLatency. The
//     single-link topology (extra == 0 everywhere) reproduces the
//     original one-switch fabric byte for byte, and the two-level
//     topology reproduces the legacy RackSize/InterRackExtra model byte
//     for byte — both are latency shapes, not contention models.
//
//   - Graph topologies (fat-tree, dragonfly) materialize switches and
//     links. Every switch-to-switch link and every switch-to-host down
//     link owns a serialization cursor with its own LogGP {latency,
//     byteTime} pair, so flows whose routes share a link genuinely
//     contend: bursts are charged on each hop's cursor in canonical
//     (arrival bound, source, flow) order, the same discipline the
//     ingress fix (DESIGN.md §11) uses, which keeps results bit-identical
//     across serial, sharded, and any worker-count runs.
//
// Routing is deterministic ECMP: where multiple equal-cost paths exist
// (fat-tree spine choice), the path is selected by a splitmix64 hash of
// (src, dst, flowID), so a flow's route is a pure function of its
// identity — independent of event order, shard layout, and worker count —
// and distinct QPs between one host pair spread across spines exactly the
// way multi-pathing spreads real QPs.
package fabric

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Link is one directed topology link with its own LogGP cost pair and a
// serialization cursor (graph topologies only). From and To are node IDs:
// hosts are 0..Hosts-1, switches Hosts..Hosts+Switches-1. Down links
// (switch→host) terminate at a host node; all other links connect
// switches. Host→switch injection is not a Link: it is charged by the
// host port's existing egress cursor at Config.LinkByteTime and crosses
// at Config.WireLatency, exactly as in the flat model.
type Link struct {
	// ID is the link's index in the topology (creation order).
	ID int
	// From and To are node IDs (see above).
	From, To int
	// Name labels the link in reports ("edge3->spine1", "down:h17").
	Name string
	// Latency is the propagation delay charged after serialization.
	Latency time.Duration
	// ByteTime is the per-byte serialization cost in ns/B; 0 inherits
	// Config.LinkByteTime when the fabric is built.
	ByteTime float64
	// OwnerHost is the host whose engine owns the link's cursor in a
	// sharded run. Owners are chosen so every hop's cross-engine post is
	// covered by the shard lookahead matrix (see cluster).
	OwnerHost int
}

// Topology describes the interconnect beyond the host NICs. Construct one
// with SingleLink, TwoLevel, NewFatTree, NewDragonfly, or ParseTopology,
// and install it via Config.Topo. The zero value is not usable.
type Topology struct {
	name  string
	hosts int // 0 = unbounded (flat topologies)
	flat  bool

	// extraFn is the per-pair extra one-way latency beyond
	// Config.WireLatency: the analytic shortest-path latency of the
	// route (graph mode) or the configured pair extra (flat mode). It
	// must be symmetric and must match the sum of route link latencies.
	extraFn func(a, b int) time.Duration

	// Graph mode.
	links    []Link
	groupOf  []int // host -> switch-boundary group (edge switch / dragonfly group)
	ngroups  int
	minLink  time.Duration
	routeFn  func(src, dst int, flowID uint64) []int
	switches int

	// baseWire is stamped by Config.Topology() at resolve time so
	// PairLatency can include the host injection latency.
	baseWire time.Duration
}

// Name returns the topology's spec-style name ("single-link",
// "fat-tree:k=8", ...).
func (t *Topology) Name() string { return t.name }

// Hosts returns the host capacity, or 0 when unbounded (flat topologies
// accept any number of ports).
func (t *Topology) Hosts() int { return t.hosts }

// Switches returns the switch count (0 for flat topologies).
func (t *Topology) Switches() int { return t.switches }

// Flat reports whether the topology is latency-only (no link cursors).
func (t *Topology) Flat() bool { return t.flat }

// Links returns the number of contended links (0 for flat topologies).
func (t *Topology) Links() int { return len(t.links) }

// LinkAt returns link i.
func (t *Topology) LinkAt(i int) Link { return t.links[i] }

// Groups returns the number of switch-boundary host groups: hosts under
// one edge switch (fat-tree) or in one group (dragonfly) belong to the
// same group, and conservative-PDES shard slabs snap to these boundaries
// so no switch's local traffic straddles a shard. Flat topologies have a
// single group.
func (t *Topology) Groups() int {
	if t.ngroups == 0 {
		return 1
	}
	return t.ngroups
}

// GroupOf returns the switch-boundary group of a host (0 for flat
// topologies and hosts beyond the group table).
func (t *Topology) GroupOf(host int) int {
	if host < 0 || host >= len(t.groupOf) {
		return 0
	}
	return t.groupOf[host]
}

// MinLinkLatency returns the smallest link latency (0 for flat
// topologies). It participates in Config.Lookahead: cross-shard hop
// forwarding between link cursors is separated by at least one link
// latency.
func (t *Topology) MinLinkLatency() time.Duration {
	if t.flat {
		return 0
	}
	return t.minLink
}

// PairExtra returns the extra one-way latency between two hosts beyond
// Config.WireLatency: zero in the single-link topology, the inter-rack
// extra in the two-level shim, and the sum of route link latencies in
// graph topologies. It is symmetric, and identical across every
// equal-cost route candidate by construction.
func (t *Topology) PairExtra(a, b int) time.Duration {
	if t.extraFn == nil {
		return 0
	}
	return t.extraFn(a, b)
}

// PairLatency returns the one-way host-to-host propagation latency floor:
// the host injection latency (Config.WireLatency, stamped at resolve
// time) plus PairExtra. Every effect host a schedules onto host b is at
// least this far in the future, which is what makes it the per-pair
// conservative-PDES lookahead bound the cluster's shard matrix reads.
func (t *Topology) PairLatency(a, b int) time.Duration {
	return t.baseWire + t.PairExtra(a, b)
}

// Route returns the link IDs a flow (src, dst, flowID) traverses after
// host injection, ending with dst's down link, or nil for flat
// topologies (direct delivery, the original pipeline). The route is a
// pure function of its arguments: same inputs, same path, on any shard
// or worker count.
func (t *Topology) Route(src, dst int, flowID uint64) []int {
	if t.routeFn == nil {
		return nil
	}
	return t.routeFn(src, dst, flowID)
}

// RelayPairs invokes fn for every (into, outof) link pair adjacent at a
// switch — every cursor-to-cursor hop a routed burst can take, each
// separated by the in-link's latency. The cluster's lookahead matrix
// relaxes shard pairs over these edges. No-op on flat topologies.
func (t *Topology) RelayPairs(fn func(in, out Link)) {
	if t.flat {
		return
	}
	// Deterministic iteration: index out-links per switch node.
	first := t.hosts
	outOf := make([][]int, t.switches)
	for i := range t.links {
		s := t.links[i].From - first
		outOf[s] = append(outOf[s], i)
	}
	for i := range t.links {
		in := t.links[i]
		if in.To < first {
			continue // down link: terminates at a host, nothing to relay
		}
		for _, oi := range outOf[in.To-first] {
			fn(in, t.links[oi])
		}
	}
}

// validate reports construction errors. Graph links must have positive
// latency (cross-engine hops need a positive conservative bound) and
// non-negative byte time.
func (t *Topology) validate() error {
	if t == nil {
		return nil
	}
	if t.flat {
		return nil
	}
	if t.hosts < 1 {
		return fmt.Errorf("fabric: topology %q has no hosts", t.name)
	}
	for i := range t.links {
		l := &t.links[i]
		if l.Latency <= 0 {
			return fmt.Errorf("fabric: topology %q link %q needs positive latency", t.name, l.Name)
		}
		if l.ByteTime < 0 {
			return fmt.Errorf("fabric: topology %q link %q has negative byte time", t.name, l.Name)
		}
		if l.OwnerHost < 0 || l.OwnerHost >= t.hosts {
			return fmt.Errorf("fabric: topology %q link %q owner host %d out of range", t.name, l.Name, l.OwnerHost)
		}
		if l.To < t.hosts && l.OwnerHost != l.To {
			// The completion/recycle return path after the down link is
			// bounded by the destination pair's lookahead, which is only
			// sound if the down link's cursor runs on the destination.
			return fmt.Errorf("fabric: topology %q down link %q must be owned by its host %d", t.name, l.Name, l.To)
		}
	}
	return nil
}

// splitmix64 is the standard splitmix64 finalizer: a bijective avalanche
// mix, the same generator the bench jitter and shard barrier seeds use.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// routeHash mixes a flow identity into the ECMP path-selection hash.
func routeHash(src, dst int, flowID uint64) uint64 {
	return splitmix64(splitmix64(uint64(src)) ^ splitmix64(uint64(dst)<<20) ^ splitmix64(flowID<<40|flowID))
}

// SingleLink returns the flat single-switch topology: every host pair at
// the base wire latency, no extra hops, no link cursors. A fabric built
// with it is byte-identical to one built with no topology at all.
func SingleLink() *Topology {
	return &Topology{name: "single-link", flat: true}
}

// TwoLevel returns the flat two-level topology the legacy
// Config.RackSize/InterRackExtra fields construct internally: hosts in
// racks of rackSize consecutive IDs, with extra added to every
// cross-rack interaction. It is a latency shape only — cross-rack flows
// do not contend on an aggregation cursor — which is exactly the legacy
// model, byte for byte.
func TwoLevel(rackSize int, extra time.Duration) *Topology {
	name := fmt.Sprintf("two-level:rack=%d,extra=%s", rackSize, extra)
	if rackSize <= 0 {
		return &Topology{name: name, flat: true}
	}
	return &Topology{
		name: name,
		flat: true,
		extraFn: func(a, b int) time.Duration {
			if a/rackSize == b/rackSize {
				return 0
			}
			return extra
		},
	}
}

// FatTreeConfig parameterizes NewFatTree.
type FatTreeConfig struct {
	// K is the switch radix: K edge switches with K/2 hosts each, K/2
	// spines, every edge wired to every spine (a two-level folded Clos,
	// K*K/2 hosts). K must be even and >= 2.
	K int
	// Cable is the edge<->spine link latency. Zero selects 500 ns.
	Cable time.Duration
	// Down is the edge->host link latency. Zero selects 1 µs (the
	// default WireLatency, keeping host attach symmetric).
	Down time.Duration
	// ByteTime is the per-byte cost of every fabric link in ns/B; zero
	// inherits Config.LinkByteTime (a full-bisection, untapered tree).
	ByteTime float64
}

// NewFatTree builds a two-level folded-Clos (leaf/spine fat-tree)
// topology. Routing between edges is ECMP over the spines, hashed per
// flow; hosts under one edge switch form one shard-snap group.
func NewFatTree(cfg FatTreeConfig) (*Topology, error) {
	if cfg.K < 2 || cfg.K%2 != 0 {
		return nil, fmt.Errorf("fabric: fat-tree K %d must be even and >= 2", cfg.K)
	}
	if cfg.Cable == 0 {
		cfg.Cable = 500 * time.Nanosecond
	}
	if cfg.Down == 0 {
		cfg.Down = time.Microsecond
	}
	if cfg.Cable < 0 || cfg.Down < 0 || cfg.ByteTime < 0 {
		return nil, fmt.Errorf("fabric: fat-tree has negative cost parameters")
	}
	k := cfg.K
	edges, spines, perEdge := k, k/2, k/2
	hosts := edges * perEdge
	t := &Topology{
		name:     fmt.Sprintf("fat-tree:k=%d", k),
		hosts:    hosts,
		switches: edges + spines,
		ngroups:  edges,
		minLink:  minDuration(cfg.Cable, cfg.Down),
	}
	t.groupOf = make([]int, hosts)
	for h := range t.groupOf {
		t.groupOf[h] = h / perEdge
	}
	edgeNode := func(e int) int { return hosts + e }
	spineNode := func(s int) int { return hosts + edges + s }
	// Link layout: [e*spines+s] up links, then [s*edges+e] down-to-edge
	// links, then one down link per host.
	up := func(e, s int) int { return e*spines + s }
	dn := func(s, e int) int { return edges*spines + s*edges + e }
	hostDown := func(h int) int { return 2*edges*spines + h }
	t.links = make([]Link, 2*edges*spines+hosts)
	for e := 0; e < edges; e++ {
		for s := 0; s < spines; s++ {
			t.links[up(e, s)] = Link{
				ID: up(e, s), From: edgeNode(e), To: spineNode(s),
				Name:    fmt.Sprintf("edge%d->spine%d", e, s),
				Latency: cfg.Cable, ByteTime: cfg.ByteTime,
				OwnerHost: e * perEdge,
			}
			t.links[dn(s, e)] = Link{
				ID: dn(s, e), From: spineNode(s), To: edgeNode(e),
				Name:    fmt.Sprintf("spine%d->edge%d", s, e),
				Latency: cfg.Cable, ByteTime: cfg.ByteTime,
				// Owned by the destination edge's first host: the hop
				// into this link crosses shards at one cable latency,
				// which the cluster matrix accounts for.
				OwnerHost: e * perEdge,
			}
		}
	}
	for h := 0; h < hosts; h++ {
		t.links[hostDown(h)] = Link{
			ID: hostDown(h), From: edgeNode(h / perEdge), To: h,
			Name:    fmt.Sprintf("down:h%d", h),
			Latency: cfg.Down, ByteTime: cfg.ByteTime,
			OwnerHost: h,
		}
	}
	t.extraFn = func(a, b int) time.Duration {
		if a/perEdge == b/perEdge {
			return cfg.Down
		}
		return 2*cfg.Cable + cfg.Down
	}
	t.routeFn = func(src, dst int, flowID uint64) []int {
		es, ed := src/perEdge, dst/perEdge
		if es == ed {
			return []int{hostDown(dst)}
		}
		s := int(routeHash(src, dst, flowID) % uint64(spines))
		return []int{up(es, s), dn(s, ed), hostDown(dst)}
	}
	return t, nil
}

// DragonflyConfig parameterizes NewDragonfly.
type DragonflyConfig struct {
	// Groups, Routers (per group), and HostsPer (per router) size the
	// fabric: Groups*Routers*HostsPer hosts. Defaults (zeros) select the
	// balanced a=2h shape around HostsPer=2: 9 groups x 4 routers x 2
	// hosts = 72 hosts.
	Groups, Routers, HostsPer int
	// Cable is the intra-group (router all-to-all) link latency. Zero
	// selects 500 ns.
	Cable time.Duration
	// Global is the inter-group optical link latency. Zero selects
	// 5*Cable; it must be at least 2*Cable so minimal routing stays a
	// metric (triangle inequality over host pairs).
	Global time.Duration
	// Down is the router->host link latency. Zero selects 1 µs.
	Down time.Duration
	// ByteTime is the per-byte cost of every fabric link in ns/B; zero
	// inherits Config.LinkByteTime.
	ByteTime float64
}

// NewDragonfly builds a dragonfly: groups of all-to-all-connected
// routers, one global link per ordered group pair between deterministic
// gateway routers, minimal routing. Hosts in one group form one
// shard-snap group.
func NewDragonfly(cfg DragonflyConfig) (*Topology, error) {
	if cfg.HostsPer == 0 {
		cfg.HostsPer = 2
	}
	if cfg.Routers == 0 {
		cfg.Routers = 2 * cfg.HostsPer
	}
	if cfg.Groups == 0 {
		cfg.Groups = cfg.Routers*cfg.HostsPer + 1
	}
	if cfg.Groups < 2 || cfg.Routers < 1 || cfg.HostsPer < 1 {
		return nil, fmt.Errorf("fabric: dragonfly needs >= 2 groups and positive routers/hosts, got g=%d a=%d h=%d",
			cfg.Groups, cfg.Routers, cfg.HostsPer)
	}
	if cfg.Cable == 0 {
		cfg.Cable = 500 * time.Nanosecond
	}
	if cfg.Global == 0 {
		cfg.Global = 5 * cfg.Cable
	}
	if cfg.Down == 0 {
		cfg.Down = time.Microsecond
	}
	if cfg.Cable < 0 || cfg.Down < 0 || cfg.ByteTime < 0 {
		return nil, fmt.Errorf("fabric: dragonfly has negative cost parameters")
	}
	if cfg.Global < 2*cfg.Cable {
		return nil, fmt.Errorf("fabric: dragonfly Global %v must be >= 2*Cable %v (minimal routing must satisfy the triangle inequality)",
			cfg.Global, cfg.Cable)
	}
	g, a, hp := cfg.Groups, cfg.Routers, cfg.HostsPer
	hosts := g * a * hp
	routers := g * a
	t := &Topology{
		name:     fmt.Sprintf("dragonfly:groups=%d,routers=%d,hosts=%d", g, a, hp),
		hosts:    hosts,
		switches: routers,
		ngroups:  g,
		minLink:  minDuration(cfg.Cable, minDuration(cfg.Global, cfg.Down)),
	}
	t.groupOf = make([]int, hosts)
	for h := range t.groupOf {
		t.groupOf[h] = h / (a * hp)
	}
	routerNode := func(r int) int { return hosts + r }
	routerOf := func(h int) int { return h / hp }
	firstHost := func(r int) int { return r * hp }
	// gateway returns the router in group from that holds the global
	// link toward group to.
	gateway := func(from, to int) int { return from*a + to%a }

	// Link layout: intra-group all-to-all (a*(a-1) per group), then one
	// global link per ordered group pair, then one down link per host.
	intraBase := 0
	intraPerGroup := a * (a - 1)
	intra := func(r1, r2 int) int {
		grp := r1 / a
		i, j := r1%a, r2%a
		if j > i {
			j--
		}
		return intraBase + grp*intraPerGroup + i*(a-1) + j
	}
	globalBase := g * intraPerGroup
	global := func(g1, g2 int) int {
		j := g2
		if j > g1 {
			j--
		}
		return globalBase + g1*(g-1) + j
	}
	downBase := globalBase + g*(g-1)
	down := func(h int) int { return downBase + h }

	t.links = make([]Link, downBase+hosts)
	for r1 := 0; r1 < routers; r1++ {
		for r2 := (r1 / a) * a; r2 < (r1/a)*a+a; r2++ {
			if r1 == r2 {
				continue
			}
			id := intra(r1, r2)
			t.links[id] = Link{
				ID: id, From: routerNode(r1), To: routerNode(r2),
				Name:    fmt.Sprintf("intra:r%d->r%d", r1, r2),
				Latency: cfg.Cable, ByteTime: cfg.ByteTime,
				OwnerHost: firstHost(r1),
			}
		}
	}
	for g1 := 0; g1 < g; g1++ {
		for g2 := 0; g2 < g; g2++ {
			if g1 == g2 {
				continue
			}
			id := global(g1, g2)
			t.links[id] = Link{
				ID: id, From: routerNode(gateway(g1, g2)), To: routerNode(gateway(g2, g1)),
				Name:    fmt.Sprintf("global:g%d->g%d", g1, g2),
				Latency: cfg.Global, ByteTime: cfg.ByteTime,
				OwnerHost: firstHost(gateway(g1, g2)),
			}
		}
	}
	for h := 0; h < hosts; h++ {
		id := down(h)
		t.links[id] = Link{
			ID: id, From: routerNode(routerOf(h)), To: h,
			Name:    fmt.Sprintf("down:h%d", h),
			Latency: cfg.Down, ByteTime: cfg.ByteTime,
			OwnerHost: h,
		}
	}
	t.extraFn = func(x, y int) time.Duration {
		rx, ry := routerOf(x), routerOf(y)
		if rx == ry {
			return cfg.Down
		}
		gx, gy := rx/a, ry/a
		if gx == gy {
			return cfg.Cable + cfg.Down
		}
		d := cfg.Global + cfg.Down
		if rx != gateway(gx, gy) {
			d += cfg.Cable
		}
		if ry != gateway(gy, gx) {
			d += cfg.Cable
		}
		return d
	}
	t.routeFn = func(src, dst int, flowID uint64) []int {
		rs, rd := routerOf(src), routerOf(dst)
		if rs == rd {
			return []int{down(dst)}
		}
		gs, gd := rs/a, rd/a
		if gs == gd {
			return []int{intra(rs, rd), down(dst)}
		}
		// Minimal dragonfly routing has a single candidate path; the
		// hash-selected ECMP spread lives in the fat-tree generator.
		route := make([]int, 0, 4)
		gwS, gwD := gateway(gs, gd), gateway(gd, gs)
		if rs != gwS {
			route = append(route, intra(rs, gwS))
		}
		route = append(route, global(gs, gd))
		if gwD != rd {
			route = append(route, intra(gwD, rd))
		}
		return append(route, down(dst))
	}
	return t, nil
}

func minDuration(a, b time.Duration) time.Duration {
	if a < b {
		return a
	}
	return b
}

// ParseTopology parses the -topo flag grammar:
//
//	single-link
//	two-level:rack=8[,extra=750ns]
//	fat-tree:k=8[,cable=500ns][,down=1us][,G=0.085]
//	dragonfly:groups=9,routers=4,hosts=2[,cable=500ns][,global=2500ns][,down=1us][,G=0.085]
//
// Durations use Go syntax (500ns, 1us, 1.5ms); G is the per-byte link
// cost in ns/B (0 inherits the fabric's LinkByteTime). An empty spec
// selects single-link.
func ParseTopology(spec string) (*Topology, error) {
	kind, rest, _ := strings.Cut(spec, ":")
	kv := map[string]string{}
	if rest != "" {
		for _, f := range strings.Split(rest, ",") {
			k, v, ok := strings.Cut(f, "=")
			if !ok || k == "" {
				return nil, fmt.Errorf("fabric: topology spec %q: want key=value, got %q", spec, f)
			}
			kv[k] = v
		}
	}
	getInt := func(key string, def int) (int, error) {
		v, ok := kv[key]
		if !ok {
			return def, nil
		}
		delete(kv, key)
		n, err := strconv.Atoi(v)
		if err != nil {
			return 0, fmt.Errorf("fabric: topology spec %q: %s: %v", spec, key, err)
		}
		return n, nil
	}
	getDur := func(key string, def time.Duration) (time.Duration, error) {
		v, ok := kv[key]
		if !ok {
			return def, nil
		}
		delete(kv, key)
		d, err := time.ParseDuration(v)
		if err != nil {
			return 0, fmt.Errorf("fabric: topology spec %q: %s: %v", spec, key, err)
		}
		return d, nil
	}
	getFloat := func(key string, def float64) (float64, error) {
		v, ok := kv[key]
		if !ok {
			return def, nil
		}
		delete(kv, key)
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return 0, fmt.Errorf("fabric: topology spec %q: %s: %v", spec, key, err)
		}
		return f, nil
	}
	finish := func(t *Topology, err error) (*Topology, error) {
		if err != nil {
			return nil, err
		}
		if len(kv) > 0 {
			keys := make([]string, 0, len(kv))
			for k := range kv {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			return nil, fmt.Errorf("fabric: topology spec %q: unknown key %q", spec, keys[0])
		}
		return t, nil
	}
	switch kind {
	case "", "single-link":
		return finish(SingleLink(), nil)
	case "two-level":
		rack, err := getInt("rack", 0)
		if err != nil {
			return nil, err
		}
		if rack <= 0 {
			return nil, fmt.Errorf("fabric: topology spec %q needs rack=N > 0", spec)
		}
		extra, err := getDur("extra", 750*time.Nanosecond)
		if err != nil {
			return nil, err
		}
		return finish(TwoLevel(rack, extra), nil)
	case "fat-tree":
		var cfg FatTreeConfig
		var err error
		if cfg.K, err = getInt("k", 4); err != nil {
			return nil, err
		}
		if cfg.Cable, err = getDur("cable", 0); err != nil {
			return nil, err
		}
		if cfg.Down, err = getDur("down", 0); err != nil {
			return nil, err
		}
		if cfg.ByteTime, err = getFloat("G", 0); err != nil {
			return nil, err
		}
		return finish(NewFatTree(cfg))
	case "dragonfly":
		var cfg DragonflyConfig
		var err error
		if cfg.Groups, err = getInt("groups", 0); err != nil {
			return nil, err
		}
		if cfg.Routers, err = getInt("routers", 0); err != nil {
			return nil, err
		}
		if cfg.HostsPer, err = getInt("hosts", 0); err != nil {
			return nil, err
		}
		if cfg.Cable, err = getDur("cable", 0); err != nil {
			return nil, err
		}
		if cfg.Global, err = getDur("global", 0); err != nil {
			return nil, err
		}
		if cfg.Down, err = getDur("down", 0); err != nil {
			return nil, err
		}
		if cfg.ByteTime, err = getFloat("G", 0); err != nil {
			return nil, err
		}
		return finish(NewDragonfly(cfg))
	default:
		return nil, fmt.Errorf("fabric: unknown topology kind %q (have single-link, two-level, fat-tree, dragonfly)", kind)
	}
}
