package tuning

import (
	"bytes"
	"testing"
)

// searchTable renders a Search result for byte comparison.
func searchTable(t *testing.T, cfg SearchConfig) string {
	t.Helper()
	table, err := Search(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTable(&buf, table); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestSearchParallelParity: the tuning table must be byte-identical for
// any worker count — the core guarantee of the parallel sweep layer.
func TestSearchParallelParity(t *testing.T) {
	base := SearchConfig{
		UserParts: []int{4, 16},
		Sizes:     []int{4096, 16384, 65536},
		Warmup:    1,
		Iters:     3,
	}
	serial := base
	serial.Workers = 1
	want := searchTable(t, serial)
	for _, j := range []int{2, 4, 8} {
		cfg := base
		cfg.Workers = j
		if got := searchTable(t, cfg); got != want {
			t.Errorf("Workers=%d table differs from serial:\n%s\n--- want ---\n%s", j, got, want)
		}
	}
}

// TestSearchProgressOrderedUnderParallelism: Progress must arrive from a
// single goroutine in the serial sweep's visit order even with many
// workers (documented SearchConfig.Progress contract). Appending to a
// plain slice with no locking doubles as the single-goroutine check under
// -race.
func TestSearchProgressOrderedUnderParallelism(t *testing.T) {
	type pt struct{ parts, size int }
	var got []pt
	_, err := Search(SearchConfig{
		UserParts: []int{2, 4},
		Sizes:     []int{4096, 8192, 16384},
		Warmup:    1, Iters: 1,
		Workers:  8,
		Progress: func(parts, size int) { got = append(got, pt{parts, size}) },
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []pt{
		{2, 4096}, {2, 8192}, {2, 16384},
		{4, 4096}, {4, 8192}, {4, 16384},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d progress calls, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("progress[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestSearchPointTieBreakIsLexicographic: candidates with equal mean time
// must resolve to the smallest (transport, qps). Tiny messages at tiny
// iteration counts produce ties between QP counts, so assert the invariant
// structurally: re-running the same point many times (any worker count)
// always yields the same pick.
func TestSearchPointTieBreakDeterministic(t *testing.T) {
	cfg := SearchConfig{
		UserParts: []int{8},
		Sizes:     []int{8192},
		Warmup:    1, Iters: 1,
	}
	want := searchTable(t, cfg)
	for i := 0; i < 3; i++ {
		if got := searchTable(t, cfg); got != want {
			t.Fatalf("run %d diverged:\n%s\nwant:\n%s", i, got, want)
		}
	}
}
