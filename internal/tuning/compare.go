package tuning

import (
	"fmt"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/sweep"
	"repro/internal/trace"
)

// StrategyAdaptive is deliberately NOT a candidate in Search: the offline
// sweep enumerates fixed (transport, QPs) designs, and a strategy that
// re-plans from observed history has no single design to record — folding
// it in would make the table's meaning depend on the arrival pattern the
// search happened to run. Instead the adaptive strategy is compared
// against the tuned table after the fact: CompareStrategies replays every
// table point under both and reports the ratio, which is how the adaptive
// design earns its keep in reports without contaminating the search.

// CompareConfig shapes the post-search adaptive-vs-tuned comparison.
type CompareConfig struct {
	// Warmup and Iters per run. Zeros select 16 and 24 — the warm-up must
	// cover the adaptive warm-up window plus dwell so the measured
	// iterations observe the post-adaptation design.
	Warmup int
	Iters  int
	// Compute is per-thread computation before the arrival delay.
	Compute time.Duration
	// Arrival, if non-nil, drives both runs with the same synthetic
	// Pready schedule; nil compares under immediate arrivals.
	Arrival *trace.ArrivalPattern
	// Workers bounds point-level parallelism (0 selects GOMAXPROCS).
	Workers int
}

func (c CompareConfig) withDefaults() CompareConfig {
	if c.Warmup == 0 {
		c.Warmup = 16
	}
	if c.Iters == 0 {
		c.Iters = 24
	}
	return c
}

// CompareRow is one table point measured under the tuned static design and
// under StrategyAdaptive.
type CompareRow struct {
	UserParts int
	Bytes     int
	// TunedNs and AdaptiveNs are mean round-completion latencies.
	TunedNs    int64
	AdaptiveNs int64
	// Ratio is AdaptiveNs / TunedNs (1.0 = parity, below = adaptive wins).
	Ratio float64
	// Switches counts the adaptive run's design changes after the initial
	// plan.
	Switches int
}

// CompareStrategies measures every entry of a tuned table under the
// table-driven static design and under the adaptive strategy, in the
// table's deterministic iteration order.
func CompareStrategies(table *core.TuningTable, cfg CompareConfig) ([]CompareRow, error) {
	if table == nil || table.Len() == 0 {
		return nil, fmt.Errorf("tuning: CompareStrategies needs a non-empty table")
	}
	cfg = cfg.withDefaults()
	var keys []core.TuningKey
	table.ForEach(func(k core.TuningKey, _ core.TuningValue) {
		keys = append(keys, k)
	})
	rows := make([]CompareRow, len(keys))
	err := sweep.Ordered(cfg.Workers, len(keys),
		func(i int) (CompareRow, error) {
			return comparePoint(table, cfg, keys[i])
		},
		func(i int, r CompareRow) error {
			rows[i] = r
			return nil
		})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// comparePoint runs both designs at one table entry.
func comparePoint(table *core.TuningTable, cfg CompareConfig, key core.TuningKey) (CompareRow, error) {
	row := CompareRow{UserParts: key.UserParts, Bytes: key.Bytes}
	run := func(opts core.Options) (bench.P2PResult, error) {
		return bench.RunP2P(bench.P2PConfig{
			Parts:   key.UserParts,
			Bytes:   key.Bytes,
			Compute: cfg.Compute,
			Warmup:  cfg.Warmup,
			Iters:   cfg.Iters,
			Opts:    opts,
			Arrival: cfg.Arrival,
		})
	}
	tuned, err := run(core.Options{Strategy: core.StrategyTuningTable, Table: table})
	if err != nil {
		return row, fmt.Errorf("tuning: compare tuned at (%d parts, %d B): %w", key.UserParts, key.Bytes, err)
	}
	adaptive, err := run(core.Options{Strategy: core.StrategyAdaptive})
	if err != nil {
		return row, fmt.Errorf("tuning: compare adaptive at (%d parts, %d B): %w", key.UserParts, key.Bytes, err)
	}
	row.TunedNs = tuned.MeanIterTime().Nanoseconds()
	row.AdaptiveNs = adaptive.MeanIterTime().Nanoseconds()
	if row.TunedNs > 0 {
		row.Ratio = float64(row.AdaptiveNs) / float64(row.TunedNs)
	}
	if s := adaptive.Adaptive; s != nil {
		row.Switches = len(s.Switches) - 1
	}
	return row, nil
}
