package tuning

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/trace"
)

func TestCompareStrategiesAgainstTunedTable(t *testing.T) {
	table, err := Search(SearchConfig{
		UserParts: []int{16},
		Sizes:     []int{64 << 10, 256 << 10},
		Warmup:    1,
		Iters:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := CompareStrategies(table, CompareConfig{
		Warmup:  12,
		Iters:   12,
		Compute: 20 * time.Microsecond,
		Arrival: &trace.ArrivalPattern{
			Kind:   trace.PatternStraggler,
			Seed:   3,
			Spread: 500 * time.Microsecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != table.Len() {
		t.Fatalf("got %d rows, want one per table entry (%d)", len(rows), table.Len())
	}
	for i, r := range rows {
		if r.TunedNs <= 0 || r.AdaptiveNs <= 0 || r.Ratio <= 0 {
			t.Errorf("row %d: unmeasured point %+v", i, r)
		}
		t.Logf("parts=%d size=%d tuned=%dns adaptive=%dns ratio=%.3f switches=%d",
			r.UserParts, r.Bytes, r.TunedNs, r.AdaptiveNs, r.Ratio, r.Switches)
	}
	// Rows follow the table's deterministic iteration order.
	want := []int{64 << 10, 256 << 10}
	for i, r := range rows {
		if r.Bytes != want[i] {
			t.Errorf("row %d: bytes %d, want %d", i, r.Bytes, want[i])
		}
	}
	if _, err := CompareStrategies(core.NewTuningTable(), CompareConfig{}); err == nil {
		t.Error("CompareStrategies accepted an empty table")
	}
}
