package tuning

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
)

func TestSearchFindsAggregationForMediumMessages(t *testing.T) {
	// At 128 KiB with 16 partitions, aggregation (transport < 16) must
	// win the exhaustive search — the paper's core observation.
	table, err := Search(SearchConfig{
		UserParts: []int{16},
		Sizes:     []int{128 << 10},
		Warmup:    1,
		Iters:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	v, ok := table.Lookup(16, 128<<10)
	if !ok {
		t.Fatal("no entry for searched point")
	}
	if v.Transport >= 16 {
		t.Errorf("search picked %d transport partitions at 128KiB; expected aggregation", v.Transport)
	}
	if v.QPs < 1 || v.QPs > v.Transport {
		t.Errorf("bad QP pick %+v", v)
	}
}

func TestSearchSkipsUnrealizablePoints(t *testing.T) {
	table, err := Search(SearchConfig{
		UserParts: []int{16},
		Sizes:     []int{100}, // not divisible by 16
		Warmup:    1, Iters: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if table.Len() != 0 {
		t.Fatalf("unrealizable point produced %d entries", table.Len())
	}
}

func TestSearchProgressCallback(t *testing.T) {
	var visited int
	_, err := Search(SearchConfig{
		UserParts: []int{2},
		Sizes:     []int{4096, 8192},
		Warmup:    1, Iters: 1,
		Progress: func(parts, size int) { visited++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if visited != 2 {
		t.Fatalf("visited %d points, want 2", visited)
	}
}

func TestSearchValidation(t *testing.T) {
	bad := []SearchConfig{
		{},
		{UserParts: []int{0}, Sizes: []int{4096}},
		{UserParts: []int{4}, Sizes: []int{0}},
		{UserParts: []int{4}, Sizes: []int{4096}, MaxQPs: -1},
	}
	for i, c := range bad {
		if _, err := Search(c); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestTableSerializationRoundTrip(t *testing.T) {
	table := core.NewTuningTable()
	table.Set(core.TuningKey{UserParts: 16, Bytes: 4096}, core.TuningValue{Transport: 4, QPs: 2})
	table.Set(core.TuningKey{UserParts: 32, Bytes: 65536}, core.TuningValue{Transport: 8, QPs: 8})
	var buf bytes.Buffer
	if err := WriteTable(&buf, table); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTable(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Fatalf("round trip lost entries: %d", got.Len())
	}
	v, ok := got.Lookup(16, 4096)
	if !ok || v != (core.TuningValue{Transport: 4, QPs: 2}) {
		t.Fatalf("entry = %+v %v", v, ok)
	}
}

func TestReadTableRejectsGarbage(t *testing.T) {
	cases := []string{
		"1 2 3",      // too few fields
		"x 2 3 4",    // non-numeric
		"0 4096 1 1", // non-positive
		"4 4096 8 1", // transport > partitions
		"4 4096 2 0", // zero QPs
	}
	for _, c := range cases {
		if _, err := ReadTable(strings.NewReader(c)); err == nil {
			t.Errorf("accepted %q", c)
		}
	}
}

func TestReadTableSkipsComments(t *testing.T) {
	in := "# generated\n\n16 4096 4 2\n"
	tb, err := ReadTable(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tb.Len() != 1 {
		t.Fatalf("Len = %d", tb.Len())
	}
}
