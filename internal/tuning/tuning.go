// Package tuning implements the brute-force search behind the paper's
// Tuning Table Aggregator (Section IV-B): for each (user partition count,
// message size) point it runs the overhead benchmark across every
// power-of-two (transport partitions, queue pairs) candidate and records
// the fastest. The paper's search took just under 23 hours on two Niagara
// nodes; in the simulator the same sweep takes seconds, but the algorithm
// is identical — which is the point: it is the exhaustive baseline the
// PLogGP model is judged against.
package tuning

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/sweep"
)

// SearchConfig bounds the exhaustive search.
type SearchConfig struct {
	// UserParts are the partition counts to tune (paper: powers of two).
	UserParts []int
	// Sizes are the aggregate message sizes to tune.
	Sizes []int
	// MaxQPs caps the QP candidates. Zero selects 16.
	MaxQPs int
	// Warmup and Iters per candidate run. Zeros select 3 and 10 (scaled
	// down from the paper's 100 iterations; the simulator is noiseless,
	// so fewer repetitions identify the same argmin).
	Warmup int
	Iters  int
	// Progress, if non-nil, is called once per (parts, size) point.
	//
	// Concurrency contract: even when Workers > 1, Progress is invoked
	// from the single collector goroutine running Search, in submission
	// order (the same order the serial sweep visits points), immediately
	// before the point's result is recorded. Implementations therefore
	// need no locking of their own.
	Progress func(parts, size int)
	// Workers bounds the number of points evaluated concurrently. Each
	// point is an independent deterministic simulation, so the resulting
	// table is byte-identical for any worker count. Zero or negative
	// selects GOMAXPROCS; 1 forces the serial path.
	Workers int
}

func (c SearchConfig) withDefaults() SearchConfig {
	if c.MaxQPs == 0 {
		c.MaxQPs = 16
	}
	if c.Warmup == 0 {
		c.Warmup = 3
	}
	if c.Iters == 0 {
		c.Iters = 10
	}
	return c
}

// Validate reports configuration errors.
func (c SearchConfig) Validate() error {
	c = c.withDefaults()
	if len(c.UserParts) == 0 || len(c.Sizes) == 0 {
		return fmt.Errorf("tuning: empty search space")
	}
	for _, p := range c.UserParts {
		if p < 1 {
			return fmt.Errorf("tuning: bad partition count %d", p)
		}
	}
	for _, s := range c.Sizes {
		if s < 1 {
			return fmt.Errorf("tuning: bad size %d", s)
		}
	}
	if c.MaxQPs < 1 {
		return fmt.Errorf("tuning: bad MaxQPs %d", c.MaxQPs)
	}
	return nil
}

// Search runs the exhaustive sweep and returns the winning table. Points
// are evaluated concurrently on cfg.Workers goroutines (each point is an
// independent deterministic simulation), but results are recorded — and
// Progress invoked — in the serial sweep's order, so the table is
// byte-identical for any worker count.
func Search(cfg SearchConfig) (*core.TuningTable, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	type point struct{ parts, size int }
	var points []point
	for _, parts := range cfg.UserParts {
		for _, size := range cfg.Sizes {
			if size%parts != 0 {
				continue // not a realizable partitioning
			}
			points = append(points, point{parts, size})
		}
	}
	table := core.NewTuningTable()
	err := sweep.Ordered(cfg.Workers, len(points),
		func(i int) (core.TuningValue, error) {
			pt := points[i]
			best, err := searchPoint(cfg, pt.parts, pt.size)
			if err != nil {
				return core.TuningValue{}, fmt.Errorf("tuning: point (%d parts, %d B): %w", pt.parts, pt.size, err)
			}
			return best, nil
		},
		func(i int, best core.TuningValue) error {
			pt := points[i]
			if cfg.Progress != nil {
				cfg.Progress(pt.parts, pt.size)
			}
			table.Set(core.TuningKey{UserParts: pt.parts, Bytes: pt.size}, best)
			return nil
		})
	if err != nil {
		return nil, err
	}
	return table, nil
}

// searchPoint evaluates every candidate at one point.
func searchPoint(cfg SearchConfig, parts, size int) (core.TuningValue, error) {
	var best core.TuningValue
	bestTime := int64(-1)
	for transport := 1; transport <= parts; transport *= 2 {
		maxQ := transport
		if maxQ > cfg.MaxQPs {
			maxQ = cfg.MaxQPs
		}
		for qps := 1; qps <= maxQ; qps *= 2 {
			res, err := bench.RunP2P(bench.P2PConfig{
				Parts:  parts,
				Bytes:  size,
				Warmup: cfg.Warmup,
				Iters:  cfg.Iters,
				Opts: core.Options{
					Strategy:       core.StrategyPLogGP, // grouping mechanics; counts forced below
					TransportParts: transport,
					QPs:            qps,
				},
			})
			if err != nil {
				return core.TuningValue{}, err
			}
			t := int64(res.MeanIterTime())
			// Argmin with an explicit deterministic tie-break: on equal
			// mean time prefer the lexicographically smallest
			// (transport, qps), so serial and parallel sweeps — and any
			// future candidate enumeration order — pick the same entry.
			better := bestTime < 0 || t < bestTime
			if !better && t == bestTime {
				c := core.TuningValue{Transport: transport, QPs: qps}
				better = c.Transport < best.Transport ||
					(c.Transport == best.Transport && c.QPs < best.QPs)
			}
			if better {
				bestTime = t
				best = core.TuningValue{Transport: transport, QPs: qps}
			}
		}
	}
	return best, nil
}

// WriteTable serializes a table as "userParts bytes transport qps" lines.
func WriteTable(w io.Writer, t *core.TuningTable) error {
	var err error
	t.ForEach(func(k core.TuningKey, v core.TuningValue) {
		if err != nil {
			return
		}
		_, err = fmt.Fprintf(w, "%d %d %d %d\n", k.UserParts, k.Bytes, v.Transport, v.QPs)
	})
	return err
}

// ReadTable parses the serialization produced by WriteTable.
func ReadTable(r io.Reader) (*core.TuningTable, error) {
	t := core.NewTuningTable()
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		var parts, bytes, transport, qps int
		if _, err := fmt.Sscanf(text, "%d %d %d %d", &parts, &bytes, &transport, &qps); err != nil {
			return nil, fmt.Errorf("tuning: line %d: %v", line, err)
		}
		if parts < 1 || bytes < 1 || transport < 1 || qps < 1 {
			return nil, fmt.Errorf("tuning: line %d: non-positive field", line)
		}
		if transport > parts {
			return nil, fmt.Errorf("tuning: line %d: transport %d exceeds partitions %d", line, transport, parts)
		}
		t.Set(core.TuningKey{UserParts: parts, Bytes: bytes},
			core.TuningValue{Transport: transport, QPs: qps})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return t, nil
}
