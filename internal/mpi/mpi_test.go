package mpi

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/xport"
)

func twoNodeWorld() *World {
	return NewWorld(Config{Cluster: cluster.NiagaraConfig(2)})
}

func TestWorldShape(t *testing.T) {
	w := NewWorld(Config{Cluster: cluster.NiagaraConfig(4), RanksPerNode: 2})
	if w.Size() != 8 {
		t.Fatalf("Size = %d, want 8", w.Size())
	}
	for i := 0; i < 8; i++ {
		r := w.Rank(i)
		if r.ID() != i {
			t.Errorf("rank %d has ID %d", i, r.ID())
		}
		if r.Node().ID != i/2 {
			t.Errorf("rank %d on node %d, want %d", i, r.Node().ID, i/2)
		}
		if r.World() != w {
			t.Errorf("rank %d world mismatch", i)
		}
	}
}

func TestDefaultCostsApplied(t *testing.T) {
	w := twoNodeWorld()
	if w.Costs() != DefaultCosts() {
		t.Fatalf("Costs = %+v", w.Costs())
	}
	custom := DefaultCosts()
	custom.WCProcess = time.Microsecond
	w2 := NewWorld(Config{Cluster: cluster.NiagaraConfig(1), Costs: custom})
	if w2.Costs().WCProcess != time.Microsecond {
		t.Fatal("custom costs ignored")
	}
}

func TestRunExecutesEveryRank(t *testing.T) {
	w := NewWorld(Config{Cluster: cluster.NiagaraConfig(3), RanksPerNode: 2})
	seen := make([]bool, w.Size())
	err := w.Run(func(p *sim.Proc, r *Rank) {
		seen[r.ID()] = true
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range seen {
		if !s {
			t.Errorf("rank %d body never ran", i)
		}
	}
}

func TestCtrlRoundTrip(t *testing.T) {
	w := twoNodeWorld()
	var got []string
	w.Rank(1).HandleCtrl("ping", func(from int, data any) {
		got = append(got, data.(string))
		if from != 0 {
			t.Errorf("from = %d", from)
		}
	})
	err := w.Run(func(p *sim.Proc, r *Rank) {
		if r.ID() == 0 {
			r.SendCtrl(1, "ping", "hello")
			r.SendCtrl(1, "ping", "world")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "hello" || got[1] != "world" {
		t.Fatalf("got %v", got)
	}
}

func TestCtrlUnknownKindPanics(t *testing.T) {
	// The panic happens in an event callback, which unwinds Engine.Run
	// directly (only proc panics become errors).
	w := twoNodeWorld()
	defer func() {
		r := recover()
		if r == nil || !strings.Contains(fmt.Sprint(r), "no handler") {
			t.Fatalf("recover() = %v", r)
		}
	}()
	_ = w.Run(func(p *sim.Proc, r *Rank) {
		if r.ID() == 0 {
			r.SendCtrl(1, "no-such-kind", nil)
		}
	})
}

func TestDuplicateCtrlHandlerPanics(t *testing.T) {
	w := twoNodeWorld()
	w.Rank(0).HandleCtrl("k", func(int, any) {})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate handler did not panic")
		}
	}()
	w.Rank(0).HandleCtrl("k", func(int, any) {})
}

func TestBarrierSynchronizes(t *testing.T) {
	w := NewWorld(Config{Cluster: cluster.NiagaraConfig(4)})
	var after []sim.Time
	err := w.Run(func(p *sim.Proc, r *Rank) {
		// Stagger arrivals; all must leave at (or after) the last arrival.
		p.Sleep(time.Duration(r.ID()) * time.Millisecond)
		r.Barrier(p)
		after = append(after, p.Now())
	})
	if err != nil {
		t.Fatal(err)
	}
	last := sim.Time(3 * time.Millisecond)
	for i, at := range after {
		if at < last {
			t.Errorf("rank %d left barrier at %v, before last arrival %v", i, at, last)
		}
	}
}

func TestBarrierReusable(t *testing.T) {
	w := NewWorld(Config{Cluster: cluster.NiagaraConfig(2)})
	counts := make([]int, 2)
	err := w.Run(func(p *sim.Proc, r *Rank) {
		for i := 0; i < 5; i++ {
			r.Barrier(p)
			counts[r.ID()]++
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if counts[0] != 5 || counts[1] != 5 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestProgressTryLock(t *testing.T) {
	// While one proc is inside Progress (sleeping on WCProcess), another
	// proc's Progress must return false immediately.
	w := twoNodeWorld()
	r0, r1 := w.Rank(0), w.Rank(1)

	// Wire an endpoint pair between rank 0 and rank 1 carrying one
	// completion, through the provider SPI.
	pv0, err := r0.Provider("verbs")
	if err != nil {
		t.Fatal(err)
	}
	pv1, err := r1.Provider("verbs")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	mr0, err := pv0.RegMem(buf)
	if err != nil {
		t.Fatal(err)
	}
	buf1 := make([]byte, 64)
	mr1, err := pv1.RegMem(buf1)
	if err != nil {
		t.Fatal(err)
	}
	handled := 0
	ep0, err := pv0.NewEndpoint(xport.EndpointConfig{
		OnCompletion: func(p *sim.Proc, c xport.Completion) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	ep1, err := pv1.NewEndpoint(xport.EndpointConfig{
		OnCompletion: func(p *sim.Proc, c xport.Completion) { handled++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ep0.Connect(ep1.Desc()); err != nil {
		t.Fatal(err)
	}
	if err := ep1.Connect(ep0.Desc()); err != nil {
		t.Fatal(err)
	}

	if err := ep1.PostRecv(&xport.RecvWR{}); err != nil {
		t.Fatal(err)
	}
	err = ep0.PostSend(&xport.SendWR{
		Op:         xport.OpWriteImm,
		Segs:       []xport.Seg{{Mem: mr0, Off: 0, Len: 64}},
		RemoteAddr: mr1.Addr(),
		RKey:       mr1.RKey(),
		Imm:        1,
	})
	if err != nil {
		t.Fatal(err)
	}

	e := w.Engine()
	secondSawBusy := false
	e.Spawn("first", func(p *sim.Proc) {
		p.Sleep(time.Millisecond) // after the completion arrives
		if !r1.Progress(p) {
			t.Error("first Progress found nothing to do")
		}
	})
	e.Spawn("second", func(p *sim.Proc) {
		// Land inside first's WCProcess sleep window.
		p.Sleep(time.Millisecond + 50*time.Nanosecond)
		if r1.Progress(p) {
			secondSawBusy = false
		} else {
			secondSawBusy = true
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !secondSawBusy {
		t.Fatal("second Progress did not observe the try-lock")
	}
	if handled != 1 {
		t.Fatalf("handled %d completions, want 1", handled)
	}
	if r1.WCProcessed() != 1 {
		t.Fatalf("WCProcessed = %d", r1.WCProcessed())
	}
}

func TestWaitOnWakesOnCtrl(t *testing.T) {
	w := twoNodeWorld()
	flag := false
	w.Rank(1).HandleCtrl("set", func(int, any) { flag = true })
	var wokeAt sim.Time
	err := w.Run(func(p *sim.Proc, r *Rank) {
		switch r.ID() {
		case 0:
			p.Sleep(2 * time.Millisecond)
			r.SendCtrl(1, "set", nil)
		case 1:
			r.WaitOn(p, func() bool { return flag })
			wokeAt = p.Now()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if wokeAt < sim.Time(2*time.Millisecond) {
		t.Fatalf("woke at %v before flag was set", wokeAt)
	}
}

func TestPostLockedSerializes(t *testing.T) {
	w := twoNodeWorld()
	r := w.Rank(0)
	hold := w.Costs().PostLockHold
	var ends []sim.Time
	for i := 0; i < 3; i++ {
		w.Engine().Spawn("poster", func(p *sim.Proc) {
			r.PostLocked(p, func() {})
			ends = append(ends, p.Now())
		})
	}
	if err := w.Engine().Run(); err != nil {
		t.Fatal(err)
	}
	for i, at := range ends {
		want := sim.Time(time.Duration(i+1) * hold)
		if at != want {
			t.Fatalf("poster %d finished at %v, want %v (serialized)", i, at, want)
		}
	}
}

func TestLaunchGroupCompletion(t *testing.T) {
	w := twoNodeWorld()
	g := w.Launch(func(p *sim.Proc, r *Rank) {
		p.Sleep(time.Duration(r.ID()+1) * time.Millisecond)
	})
	var doneAt sim.Time
	w.Engine().Spawn("watcher", func(p *sim.Proc) {
		g.Wait(p)
		doneAt = p.Now()
	})
	if err := w.Engine().Run(); err != nil {
		t.Fatal(err)
	}
	if doneAt != sim.Time(2*time.Millisecond) {
		t.Fatalf("group completed at %v, want 2ms", doneAt)
	}
}
