package mpi

import "repro/internal/sim"

// Control-message kinds used by the barrier.
const (
	ctrlBarrierArrive  = "mpi.barrier.arrive"
	ctrlBarrierRelease = "mpi.barrier.release"
)

// barrierState tracks a generation-counted central barrier rooted at
// rank 0.
type barrierState struct {
	// generation counts completed barriers on this rank.
	generation int64
	// arrived counts arrivals at the root for the current generation.
	arrived int
	release *sim.Cond
}

// initBarrierHandlers is called once per rank at construction.
func (r *Rank) initBarrierHandlers() {
	r.HandleCtrl(ctrlBarrierRelease, func(_ int, data any) {
		r.barrier.generation = data.(int64)
		r.barrier.release.Broadcast()
	})
	if r.id == 0 {
		r.HandleCtrl(ctrlBarrierArrive, func(_ int, _ any) {
			r.barrier.arrived++
			if r.barrier.arrived == r.w.Size() {
				r.barrier.arrived = 0
				gen := r.barrier.generation + 1
				for dst := 1; dst < r.w.Size(); dst++ {
					r.SendCtrl(dst, ctrlBarrierRelease, gen)
				}
				r.barrier.generation = gen
				r.barrier.release.Broadcast()
			}
		})
	}
}

// Barrier blocks the calling proc until every rank in the world has
// entered the same barrier generation. Exactly one proc per rank may use
// the barrier at a time (as with MPI_Barrier on a communicator).
func (r *Rank) Barrier(p *sim.Proc) {
	want := r.barrier.generation + 1
	r.SendCtrl(0, ctrlBarrierArrive, nil)
	for r.barrier.generation < want {
		r.barrier.release.Wait(p)
	}
}
