package mpi

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/fabric"
	"repro/internal/ibv"
	"repro/internal/sim"
)

// ctrlEnvelope is the wire format of control-plane messages.
type ctrlEnvelope struct {
	kind string
	from int
	data any
}

// Rank is one MPI process. All verbs resources of a rank hang off a single
// device context and protection domain, with one send and one receive CQ
// shared by every QP the rank creates — the layout the paper's module uses.
type Rank struct {
	w    *World
	id   int
	node *cluster.Node

	ctx    *ibv.Context
	pd     *ibv.PD
	sendCQ *ibv.CQ
	recvCQ *ibv.CQ

	// progressBusy implements the paper's single-threaded progress engine:
	// MPI_Parrived "tries to acquire a lock; if successful it progresses
	// all MPI messages ... otherwise it just returns".
	progressBusy bool

	// activity wakes procs blocked in WaitOn when completions or control
	// messages arrive.
	activity *sim.Cond

	wcHandlers   map[uint32]func(p *sim.Proc, wc ibv.WC)
	ctrlHandlers map[string]func(from int, data any)

	// postLock serializes the library's post path (per-endpoint critical
	// section); oversubscribed threads contend here.
	postLock *sim.Resource

	barrier *barrierState

	// Stats.
	wcProcessed int64
	ctrlHandled int64
}

func newRank(w *World, id int, node *cluster.Node) *Rank {
	ctx := node.HCA.Open()
	r := &Rank{
		w:            w,
		id:           id,
		node:         node,
		ctx:          ctx,
		pd:           ctx.AllocPD(),
		sendCQ:       ctx.CreateCQ(1 << 16),
		recvCQ:       ctx.CreateCQ(1 << 16),
		activity:     sim.NewCond(w.Engine()),
		wcHandlers:   make(map[uint32]func(*sim.Proc, ibv.WC)),
		ctrlHandlers: make(map[string]func(int, any)),
		postLock:     sim.NewResource(w.Engine(), 1),
		barrier:      &barrierState{release: sim.NewCond(w.Engine())},
	}
	node.HCA.Port().SetControlHandler(r.onCtrl)
	// Completions arriving on either CQ wake procs blocked in WaitOn, as a
	// completion channel would.
	r.sendCQ.SetNotify(r.activity.Broadcast)
	r.recvCQ.SetNotify(r.activity.Broadcast)
	r.initBarrierHandlers()
	return r
}

// ID returns the rank number.
func (r *Rank) ID() int { return r.id }

// World returns the job this rank belongs to.
func (r *Rank) World() *World { return r.w }

// Node returns the compute node hosting the rank.
func (r *Rank) Node() *cluster.Node { return r.node }

// PD returns the rank's protection domain.
func (r *Rank) PD() *ibv.PD { return r.pd }

// Context returns the rank's device context.
func (r *Rank) Context() *ibv.Context { return r.ctx }

// SendCQ returns the CQ shared by all send queues of the rank.
func (r *Rank) SendCQ() *ibv.CQ { return r.sendCQ }

// RecvCQ returns the CQ shared by all receive queues of the rank.
func (r *Rank) RecvCQ() *ibv.CQ { return r.recvCQ }

// Compute runs d of single-core application work (queuing for a core).
func (r *Rank) Compute(p *sim.Proc, d time.Duration) {
	r.node.Compute(p, d)
}

// WCProcessed reports completions drained by this rank's progress engine.
func (r *Rank) WCProcessed() int64 { return r.wcProcessed }

// HandleQP routes completions carrying the QP's number (on either CQ) to
// fn. Completions for unregistered QPs panic: they indicate a runtime bug.
func (r *Rank) HandleQP(qp *ibv.QP, fn func(p *sim.Proc, wc ibv.WC)) {
	r.wcHandlers[qp.QPN()] = fn
}

// HandleCtrl registers the handler for control messages of the given kind.
func (r *Rank) HandleCtrl(kind string, fn func(from int, data any)) {
	if _, dup := r.ctrlHandlers[kind]; dup {
		panic(fmt.Sprintf("mpi: duplicate control handler %q", kind))
	}
	r.ctrlHandlers[kind] = fn
}

// SendCtrl delivers (kind, data) to the destination rank's registered
// handler over the fabric control plane.
func (r *Rank) SendCtrl(dst int, kind string, data any) {
	dstRank := r.w.ranks[dst]
	env := r.w.takeEnv()
	env.kind, env.from, env.data = kind, r.id, data
	r.node.HCA.Port().SendControl(dstRank.node.HCA.Port(), env)
}

// onCtrl dispatches an arriving control message. Handlers run at event
// context (no proc): they must only do bookkeeping and wake waiters.
func (r *Rank) onCtrl(_ *fabric.Port, payload any) {
	env := payload.(*ctrlEnvelope)
	h, ok := r.ctrlHandlers[env.kind]
	if !ok {
		panic(fmt.Sprintf("mpi: rank %d: no handler for control kind %q", r.id, env.kind))
	}
	from, data := env.from, env.data
	r.w.putEnv(env)
	r.ctrlHandled++
	h(from, data)
	r.activity.Broadcast()
}

// Progress drains both CQs, charging WCProcess per completion and
// dispatching each to its QP handler. It returns false immediately if
// another thread holds the progress lock (the paper's try-lock), and
// reports whether any completion was processed otherwise.
func (r *Rank) Progress(p *sim.Proc) bool {
	if r.progressBusy {
		return false
	}
	r.progressBusy = true
	worked := false
	var wcs [64]ibv.WC
	for {
		n := r.recvCQ.Poll(wcs[:])
		if n == 0 {
			n = r.sendCQ.Poll(wcs[:])
		}
		if n == 0 {
			break
		}
		for _, wc := range wcs[:n] {
			p.Sleep(r.w.costs.WCProcess)
			r.wcProcessed++
			h, ok := r.wcHandlers[wc.QPN]
			if !ok {
				r.progressBusy = false
				panic(fmt.Sprintf("mpi: rank %d: completion for unregistered QPN %d: %+v", r.id, wc.QPN, wc))
			}
			h(p, wc)
		}
		worked = true
	}
	r.progressBusy = false
	if worked {
		r.activity.Broadcast()
	}
	return worked
}

// WaitOn blocks the proc until pred() holds, progressing the rank's
// communication while it waits. This is the engine under MPI_Wait,
// MPI_Test-in-a-loop, and the first-Start readiness poll.
func (r *Rank) WaitOn(p *sim.Proc, pred func() bool) {
	for !pred() {
		if r.Progress(p) {
			continue
		}
		if pred() {
			return
		}
		// Nothing to progress (or another thread owns the lock): park
		// until completions or control traffic arrive.
		r.activity.Wait(p)
	}
}

// PostLocked runs fn inside the library's per-rank post critical section,
// charging the configured hold time. Concurrent posters serialize.
func (r *Rank) PostLocked(p *sim.Proc, fn func()) {
	r.postLock.Acquire(p)
	p.Sleep(r.w.costs.PostLockHold)
	fn()
	r.postLock.Release()
}

// PostLock exposes the post critical section for callers whose locked
// region must itself consume virtual time (e.g. protocol layers that charge
// copy costs while holding the lock).
func (r *Rank) PostLock() *sim.Resource { return r.postLock }

// Wake broadcasts the rank's activity condition; modules use it after
// updating state that WaitOn predicates observe from other procs.
func (r *Rank) Wake() { r.activity.Broadcast() }
