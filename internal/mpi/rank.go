package mpi

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/xport"

	// Register the built-in transport providers so every world can resolve
	// them by name. The ucx provider registers via the verbs package's
	// import graph.
	_ "repro/internal/xport/shm"
	_ "repro/internal/xport/verbs"
)

// ctrlEnvelope is the wire format of control-plane messages. Delivery is
// per destination port; to routes the message to the right rank when
// several share a node.
type ctrlEnvelope struct {
	kind string
	from int
	to   *Rank
	data any
}

// Rank is one MPI process. Transport resources hang off provider
// instances resolved by name from the xport registry; each provider's
// completions are drained by the rank's single progress engine.
type Rank struct {
	w    *World
	id   int
	node *cluster.Node

	// providers memoizes backend instances by registry name so every
	// module on the rank shares one device context per backend.
	providers map[string]xport.Provider
	// sources are the providers' completion queues, drained in
	// registration order by Progress.
	sources []xport.ProgressSource

	// progressBusy implements the paper's single-threaded progress engine:
	// MPI_Parrived "tries to acquire a lock; if successful it progresses
	// all MPI messages ... otherwise it just returns".
	progressBusy bool

	// activity wakes procs blocked in WaitOn when completions or control
	// messages arrive.
	activity *sim.Cond

	ctrlHandlers map[string]func(from int, data any)

	// postLock serializes the library's post path (per-endpoint critical
	// section); oversubscribed threads contend here.
	postLock *sim.Resource

	barrier *barrierState

	// envFree recycles control-plane envelopes. Envelopes are taken by
	// this rank as a sender and recycled to the receiving rank once its
	// handler has unpacked them — each side touches only its own list, so
	// the recycling is shard-safe and steady-state SendCtrl stops
	// allocating once both directions are warm.
	envFree []*ctrlEnvelope

	// Stats.
	wcProcessed int64
	ctrlHandled int64
}

// Rank hosts transport providers.
var _ xport.Host = (*Rank)(nil)

func newRank(w *World, id int, node *cluster.Node) *Rank {
	// Everything the rank parks on lives on its node's engine (its shard):
	// ranks on other shards interact with it only through the fabric.
	r := &Rank{
		w:            w,
		id:           id,
		node:         node,
		providers:    make(map[string]xport.Provider),
		activity:     sim.NewCond(node.Engine),
		ctrlHandlers: make(map[string]func(int, any)),
		postLock:     sim.NewResource(node.Engine, 1),
		barrier:      &barrierState{release: sim.NewCond(node.Engine)},
	}
	r.initBarrierHandlers()
	return r
}

// ID returns the rank number.
func (r *Rank) ID() int { return r.id }

// World returns the job this rank belongs to.
func (r *Rank) World() *World { return r.w }

// Node returns the compute node hosting the rank.
func (r *Rank) Node() *cluster.Node { return r.node }

// Engine returns the engine (shard) the rank's simulation state lives on.
func (r *Rank) Engine() *sim.Engine { return r.node.Engine }

// Hardware exposes the compute node for providers to downcast; the verbs
// provider expects a *cluster.Node carrying the HCA.
func (r *Rank) Hardware() any { return r.node }

// CompletionCost is the CPU time the progress engine charges per drained
// completion.
func (r *Rank) CompletionCost() time.Duration { return r.w.costs.WCProcess }

// AddProgressSource hooks a provider's completion queues into the rank's
// progress engine. Sources are drained in registration order.
func (r *Rank) AddProgressSource(s xport.ProgressSource) {
	r.sources = append(r.sources, s)
}

// Provider resolves (and memoizes) the named transport backend for this
// rank. All modules on the rank share the instance, so they share its
// device context, protection domain, and completion queues.
func (r *Rank) Provider(name string) (xport.Provider, error) {
	if pv, ok := r.providers[name]; ok {
		return pv, nil
	}
	pv, err := xport.NewProvider(name, r)
	if err != nil {
		return nil, err
	}
	r.providers[name] = pv
	return pv, nil
}

// Compute runs d of single-core application work (queuing for a core).
func (r *Rank) Compute(p *sim.Proc, d time.Duration) {
	r.node.Compute(p, d)
}

// WCProcessed reports completions drained by this rank's progress engine.
func (r *Rank) WCProcessed() int64 { return r.wcProcessed }

// HandleCtrl registers the handler for control messages of the given kind.
func (r *Rank) HandleCtrl(kind string, fn func(from int, data any)) {
	if _, dup := r.ctrlHandlers[kind]; dup {
		panic(fmt.Sprintf("mpi: duplicate control handler %q", kind))
	}
	r.ctrlHandlers[kind] = fn
}

// takeEnv pops a recycled control envelope or allocates a fresh one.
func (r *Rank) takeEnv() *ctrlEnvelope {
	if n := len(r.envFree); n > 0 {
		env := r.envFree[n-1]
		r.envFree[n-1] = nil
		r.envFree = r.envFree[:n-1]
		return env
	}
	return &ctrlEnvelope{}
}

// putEnv returns an unpacked envelope to this rank's free list.
func (r *Rank) putEnv(env *ctrlEnvelope) {
	env.kind, env.from, env.to, env.data = "", 0, nil, nil
	r.envFree = append(r.envFree, env)
}

// SendCtrl delivers (kind, data) to the destination rank's registered
// handler over the fabric control plane.
func (r *Rank) SendCtrl(dst int, kind string, data any) {
	dstRank := r.w.ranks[dst]
	env := r.takeEnv()
	env.kind, env.from, env.to, env.data = kind, r.id, dstRank, data
	r.node.HCA.Port().SendControl(dstRank.node.HCA.Port(), env)
}

// onCtrl dispatches an arriving control message. Handlers run at event
// context (no proc): they must only do bookkeeping and wake waiters.
func (r *Rank) onCtrl(env *ctrlEnvelope) {
	h, ok := r.ctrlHandlers[env.kind]
	if !ok {
		panic(fmt.Sprintf("mpi: rank %d: no handler for control kind %q", r.id, env.kind))
	}
	from, data := env.from, env.data
	r.putEnv(env)
	r.ctrlHandled++
	h(from, data)
	r.activity.Broadcast()
}

// Progress drains every provider's completion queues. It returns false
// immediately if another thread holds the progress lock (the paper's
// try-lock), and reports whether any completion was processed otherwise.
func (r *Rank) Progress(p *sim.Proc) bool {
	if r.progressBusy {
		return false
	}
	r.progressBusy = true
	worked := false
	for _, s := range r.sources {
		if n := s.Progress(p); n > 0 {
			r.wcProcessed += int64(n)
			worked = true
		}
	}
	r.progressBusy = false
	if worked {
		r.activity.Broadcast()
	}
	return worked
}

// WaitOn blocks the proc until pred() holds, progressing the rank's
// communication while it waits. This is the engine under MPI_Wait,
// MPI_Test-in-a-loop, and the first-Start readiness poll.
func (r *Rank) WaitOn(p *sim.Proc, pred func() bool) {
	for !pred() {
		if r.Progress(p) {
			continue
		}
		if pred() {
			return
		}
		// Nothing to progress (or another thread owns the lock): park
		// until completions or control traffic arrive.
		r.activity.Wait(p)
	}
}

// PostLocked runs fn inside the library's per-rank post critical section,
// charging the configured hold time. Concurrent posters serialize.
func (r *Rank) PostLocked(p *sim.Proc, fn func()) {
	r.postLock.Acquire(p)
	p.Sleep(r.w.costs.PostLockHold)
	fn()
	r.postLock.Release()
}

// PostLock exposes the post critical section for callers whose locked
// region must itself consume virtual time (e.g. protocol layers that charge
// copy costs while holding the lock).
func (r *Rank) PostLock() *sim.Resource { return r.postLock }

// Wake broadcasts the rank's activity condition; modules use it after
// updating state that WaitOn predicates observe from other procs.
func (r *Rank) Wake() { r.activity.Broadcast() }
