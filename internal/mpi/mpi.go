// Package mpi is the miniature MPI runtime the partitioned-communication
// module (internal/core) plugs into: a world of ranks placed on cluster
// nodes, a per-rank single-threaded progress engine with the try-lock
// discipline the paper describes in Section IV-A, a control plane for
// connection establishment and matching, and a barrier.
//
// It is deliberately the substrate, not the contribution: point-to-point
// data movement lives in internal/ucx and the MPI Partitioned interface in
// internal/core.
package mpi

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/fabric"
	"repro/internal/sim"
)

// SoftwareCosts models the CPU path lengths of the MPI library itself —
// the costs that differentiate posting one aggregated work request from
// posting 32 small ones even when the wire is idle.
type SoftwareCosts struct {
	// WCProcess is charged per work completion drained by the progress
	// engine (CQ poll, request lookup, flag update).
	WCProcess time.Duration
	// PostOverhead is charged per ibv_post_send of a pre-built work
	// request (the doorbell path the partitioned module uses — the WRs
	// are created at init time, Section IV-B).
	PostOverhead time.Duration
	// PreadyOverhead is charged per MPI_Pready (the atomic add-and-fetch
	// on the transport-partition flag array).
	PreadyOverhead time.Duration
	// PostLockHold is the length of the library-wide critical section
	// around the traditional (baseline) send path; concurrent posters
	// serialize on it — the lock contention the paper's 128-partition
	// runs expose.
	PostLockHold time.Duration
	// RecvPostOverhead is charged per receive work request replenished in
	// MPI_Start.
	RecvPostOverhead time.Duration
	// StartOverhead is charged per MPI_Start call (request reset, flag
	// clearing).
	StartOverhead time.Duration
	// CtrlProcess is charged per control-plane message handled.
	CtrlProcess time.Duration
}

// DefaultCosts returns the software cost model used throughout the
// evaluation.
func DefaultCosts() SoftwareCosts {
	return SoftwareCosts{
		WCProcess:        100 * time.Nanosecond,
		PostOverhead:     150 * time.Nanosecond,
		PreadyOverhead:   60 * time.Nanosecond,
		PostLockHold:     250 * time.Nanosecond,
		RecvPostOverhead: 100 * time.Nanosecond,
		StartOverhead:    500 * time.Nanosecond,
		CtrlProcess:      200 * time.Nanosecond,
	}
}

// Config describes an MPI job.
type Config struct {
	// Cluster is the machine shape.
	Cluster cluster.Config
	// RanksPerNode places this many ranks on each node; total world size
	// is Cluster.Nodes * RanksPerNode. Zero selects 1.
	RanksPerNode int
	// Costs is the library software cost model; the zero value selects
	// DefaultCosts.
	Costs SoftwareCosts
}

// World is one MPI job: a set of ranks on a cluster.
type World struct {
	cluster *cluster.Cluster
	ranks   []*Rank
	costs   SoftwareCosts
}

// onCtrl is the per-node port handler: it routes an arriving control
// envelope to its destination rank (several ranks may share the port).
func (w *World) onCtrl(_ *fabric.Port, payload any) {
	env := payload.(*ctrlEnvelope)
	env.to.onCtrl(env)
}

// NewWorld builds the job and its ranks. It panics on invalid
// configuration (construction-time programming error).
func NewWorld(cfg Config) *World {
	if cfg.RanksPerNode == 0 {
		cfg.RanksPerNode = 1
	}
	if cfg.RanksPerNode < 0 {
		panic(fmt.Sprintf("mpi: negative RanksPerNode %d", cfg.RanksPerNode))
	}
	if cfg.Costs == (SoftwareCosts{}) {
		cfg.Costs = DefaultCosts()
	}
	c := cluster.New(cfg.Cluster)
	w := &World{cluster: c, costs: cfg.Costs}
	for n, node := range c.Nodes {
		node.HCA.Port().SetControlHandler(w.onCtrl)
		for j := 0; j < cfg.RanksPerNode; j++ {
			w.ranks = append(w.ranks, newRank(w, n*cfg.RanksPerNode+j, node))
		}
	}
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return len(w.ranks) }

// Rank returns rank i.
func (w *World) Rank(i int) *Rank { return w.ranks[i] }

// Cluster returns the underlying machine.
func (w *World) Cluster() *cluster.Cluster { return w.cluster }

// Engine returns the simulation engine.
func (w *World) Engine() *sim.Engine { return w.cluster.Engine }

// Costs returns the software cost model.
func (w *World) Costs() SoftwareCosts { return w.costs }

// Launch spawns one proc per rank running body and returns a Group that
// becomes zero when every rank's body has returned. Run the engine to
// completion (or wait on the group from another proc) to execute the job.
// Launch requires a serial world: a sharded job has no single engine a
// Group could live on — use Run, which tracks completion through the
// shard set's global drain instead.
func (w *World) Launch(body func(p *sim.Proc, r *Rank)) *sim.Group {
	if w.cluster.ShardSet() != nil {
		panic("mpi: Launch on a sharded world (Groups cannot span shards); use Run")
	}
	g := sim.NewGroup(w.Engine())
	g.Add(len(w.ranks))
	for _, r := range w.ranks {
		r := r
		w.Engine().Spawn(fmt.Sprintf("rank%d", r.id), func(p *sim.Proc) {
			defer g.Done()
			body(p, r)
		})
	}
	return g
}

// Run launches body on every rank and drives the simulation to completion,
// returning the first error (proc panic or deadlock). On a sharded world
// each rank's proc is spawned on its node's shard engine and the shard
// set runs the job with its default worker fleet.
func (w *World) Run(body func(p *sim.Proc, r *Rank)) error {
	return w.RunWorkers(0, body)
}

// RunWorkers is Run with an explicit shard-fleet size (workers ≤ 0 selects
// the default); serial worlds ignore the count. Differential tests use it
// to prove results are independent of the worker count.
func (w *World) RunWorkers(workers int, body func(p *sim.Proc, r *Rank)) error {
	if w.cluster.ShardSet() == nil {
		w.Launch(body)
		return w.Engine().Run()
	}
	for _, r := range w.ranks {
		r := r
		r.node.Engine.Spawn(fmt.Sprintf("rank%d", r.id), func(p *sim.Proc) {
			body(p, r)
		})
	}
	return w.cluster.Run(workers)
}
