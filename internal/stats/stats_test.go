package stats

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Mean != 2.5 || s.Median != 2.5 || s.Min != 1 || s.Max != 4 {
		t.Fatalf("summary = %+v", s)
	}
	want := math.Sqrt((2.25 + 0.25 + 0.25 + 2.25) / 3)
	if math.Abs(s.Stddev-want) > 1e-12 {
		t.Fatalf("stddev = %v, want %v", s.Stddev, want)
	}
}

func TestSummarizeOddMedianAndEmpty(t *testing.T) {
	if got := Summarize([]float64{5, 1, 3}).Median; got != 3 {
		t.Errorf("odd median = %v", got)
	}
	if got := Summarize(nil); got != (Summary{}) {
		t.Errorf("empty summary = %+v", got)
	}
	one := Summarize([]float64{7})
	if one.Stddev != 0 || one.Mean != 7 {
		t.Errorf("single-sample summary = %+v", one)
	}
}

func TestDurationsAndMean(t *testing.T) {
	ds := []time.Duration{time.Second, 3 * time.Second}
	fs := Durations(ds)
	if fs[0] != 1 || fs[1] != 3 {
		t.Fatalf("Durations = %v", fs)
	}
	if MeanDuration(ds) != 2*time.Second {
		t.Fatalf("MeanDuration = %v", MeanDuration(ds))
	}
	if MeanDuration(nil) != 0 {
		t.Fatal("MeanDuration(nil) != 0")
	}
}

func TestSpeedup(t *testing.T) {
	if got := Speedup(2*time.Second, time.Second); got != 2 {
		t.Fatalf("Speedup = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("zero variant did not panic")
		}
	}()
	Speedup(time.Second, 0)
}

func TestFormatBytes(t *testing.T) {
	cases := map[int]string{
		512:       "512B",
		1024:      "1KiB",
		1536:      "1536B",
		1 << 20:   "1MiB",
		128 << 20: "128MiB",
		1 << 30:   "1GiB",
	}
	for n, want := range cases {
		if got := FormatBytes(n); got != want {
			t.Errorf("FormatBytes(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestTableText(t *testing.T) {
	tb := NewTable("Demo", "size", "speedup")
	tb.AddRow("1KiB", 1.5)
	tb.AddRow("2KiB", 2.25)
	if tb.Rows() != 2 {
		t.Fatalf("Rows = %d", tb.Rows())
	}
	var buf bytes.Buffer
	if err := tb.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"== Demo ==", "size", "speedup", "1.500", "2.250", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
}

func TestTableDurationsFormatting(t *testing.T) {
	tb := NewTable("", "t")
	tb.AddRow(1500 * time.Nanosecond)
	tb.AddRow(2500 * time.Microsecond)
	tb.AddRow(3 * time.Second)
	var buf bytes.Buffer
	if err := tb.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"1.500µs", "2.500ms", "3.000s"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in %s", want, out)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("x", "a", "b")
	tb.AddRow(`quote"y`, "with,comma")
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n\"quote\"\"y\",\"with,comma\"\n"
	if buf.String() != want {
		t.Fatalf("CSV = %q, want %q", buf.String(), want)
	}
}

func TestPowersOfTwo(t *testing.T) {
	got := PowersOfTwo(512, 4096)
	want := []int{512, 1024, 2048, 4096}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if PowersOfTwo(8, 4) != nil {
		t.Fatal("inverted range should be empty")
	}
}
