// Package stats provides the small statistics and table-rendering helpers
// the benchmark harness uses to report results the way the paper does:
// means over repeated job submissions, speedups over the baseline, and
// aligned text/CSV tables.
package stats

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"
)

// Summary describes a sample of float64 observations.
type Summary struct {
	N      int
	Mean   float64
	Median float64
	Min    float64
	Max    float64
	Stddev float64
}

// Summarize computes a Summary. An empty sample returns the zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if len(xs) > 1 {
		s.Stddev = math.Sqrt(ss / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return s
}

// Durations converts a duration sample to seconds for Summarize.
func Durations(ds []time.Duration) []float64 {
	out := make([]float64, len(ds))
	for i, d := range ds {
		out[i] = d.Seconds()
	}
	return out
}

// MeanDuration returns the mean of a duration sample.
func MeanDuration(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range ds {
		sum += d
	}
	return sum / time.Duration(len(ds))
}

// Speedup returns baseline/variant — how many times faster the variant is.
// It panics on a non-positive variant (a measurement bug, not a data
// condition).
func Speedup(baseline, variant time.Duration) float64 {
	if variant <= 0 {
		panic(fmt.Sprintf("stats: non-positive variant duration %v", variant))
	}
	return float64(baseline) / float64(variant)
}

// FormatBytes renders a byte count in the units the paper's axes use
// (KiB/MiB/GiB for exact powers, bytes otherwise).
func FormatBytes(n int) string {
	switch {
	case n >= 1<<30 && n%(1<<30) == 0:
		return fmt.Sprintf("%dGiB", n>>30)
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dMiB", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dKiB", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// Table accumulates rows and renders them as aligned text or CSV.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case time.Duration:
			row[i] = fmtDuration(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// fmtDuration renders durations with µs precision for readability.
func fmtDuration(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.3fms", float64(d)/1e6)
	default:
		return fmt.Sprintf("%.3fµs", float64(d)/1e3)
	}
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// WriteText renders the table with aligned columns.
func (t *Table) WriteText(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	rule := make([]string, len(t.Headers))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	writeRow(rule)
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV renders the table as CSV (cells containing commas or quotes are
// quoted per RFC 4180).
func (t *Table) WriteCSV(w io.Writer) error {
	writeLine := func(cells []string) error {
		for i, c := range cells {
			if i > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
			}
			if _, err := io.WriteString(w, c); err != nil {
				return err
			}
		}
		_, err := io.WriteString(w, "\n")
		return err
	}
	if err := writeLine(t.Headers); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := writeLine(row); err != nil {
			return err
		}
	}
	return nil
}

// PowersOfTwo returns the powers of two in [lo, hi] inclusive.
func PowersOfTwo(lo, hi int) []int {
	var out []int
	for v := lo; v <= hi; v *= 2 {
		out = append(out, v)
	}
	return out
}
